"""Target and tag detection: CA-CFAR plus the tag-signature matched filter.

BiScatter localizes tags by scanning range cells for the tag's known
modulation signature (after background subtraction), then refining the
range estimate — rather than thresholding raw power, which clutter would
dominate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DetectionError
from repro.radar.doppler_processing import slow_time_spectrum
from repro.utils.dsp import parabolic_peak_offset
from repro.utils.validation import ensure_positive


def cfar_detect(
    power_profile: np.ndarray,
    *,
    guard_cells: int = 2,
    training_cells: int = 8,
    threshold_factor: float = 5.0,
) -> np.ndarray:
    """Cell-averaging CFAR: indices of cells exceeding the local noise level.

    ``threshold_factor`` is the multiplicative margin over the training-cell
    mean (linear power).
    """
    power = np.asarray(power_profile, dtype=float)
    if power.ndim != 1:
        raise ValueError(f"power_profile must be 1-D, got shape {power.shape}")
    if guard_cells < 0 or training_cells < 1:
        raise ValueError("guard_cells must be >= 0 and training_cells >= 1")
    ensure_positive("threshold_factor", threshold_factor)
    n = power.size
    detections = []
    for cell in range(n):
        lead_start = max(cell - guard_cells - training_cells, 0)
        lead_end = max(cell - guard_cells, 0)
        lag_start = min(cell + guard_cells + 1, n)
        lag_end = min(cell + guard_cells + training_cells + 1, n)
        training = np.concatenate([power[lead_start:lead_end], power[lag_start:lag_end]])
        if training.size == 0:
            continue
        if power[cell] > threshold_factor * training.mean():
            detections.append(cell)
    return np.asarray(detections, dtype=int)


@dataclass(frozen=True)
class TagDetection:
    """Result of locating a modulating tag in a processed frame."""

    range_m: float
    range_bin: int
    signature_score: float
    snr_db: float


def detect_modulated_tag(
    aligned: np.ndarray,
    range_grid_m: np.ndarray,
    chirp_period_s: float,
    modulation_rate_hz: "float | Sequence[float]",
    *,
    min_range_m: float = 0.3,
    num_harmonics: int = 3,
    background: np.ndarray | None = None,
    coherence_chirps: int | None = None,
    presence_threshold: float = 2.5,
    min_cell_snr_db: float = 6.0,
) -> TagDetection:
    """Find the range cell whose slow-time spectrum best matches the tag.

    Parameters
    ----------
    aligned:
        (chirps x range-bins) matrix on a common range grid (IF-corrected).
    background:
        Optional per-range-bin static background (e.g. the frame's first
        chirp, as the paper uses) subtracted before processing.
    modulation_rate_hz:
        The tag's assigned switching rate — or a sequence of rates for tags
        that alternate (FSK data): the matched template is then the union
        of the per-rate signatures, so a tag is detected from its total
        modulated energy regardless of the data pattern.
    coherence_chirps:
        Number of chirps over which the tag's switching is phase-coherent
        (its ``chirps_per_bit`` when carrying data; ``None`` = the whole
        frame).  Sets the template line width.

    Returns the best cell with a parabolic sub-bin range refinement and the
    signature-to-median SNR of the winning cell.
    """
    matrix = np.asarray(aligned)
    ranges = np.asarray(range_grid_m, dtype=float)
    if matrix.shape[1] != ranges.size:
        raise ValueError(
            f"aligned has {matrix.shape[1]} range bins but grid has {ranges.size}"
        )
    if background is not None:
        matrix = matrix - np.asarray(background)[None, :]
    freqs, spectrum = slow_time_spectrum(matrix, chirp_period_s, remove_dc=True)
    nyquist = 1.0 / (2.0 * chirp_period_s)
    rates = (
        [float(modulation_rate_hz)]
        if np.isscalar(modulation_rate_hz)
        else [float(r) for r in modulation_rate_hz]
    )
    if not rates:
        raise DetectionError("need at least one modulation rate")
    for rate in rates:
        if rate >= nyquist:
            raise DetectionError(
                f"modulation rate {rate}Hz aliases: slow-time Nyquist is {nyquist}Hz"
            )
    from repro.radar.doppler_processing import square_wave_signature

    num_chirps = matrix.shape[0]
    if coherence_chirps is not None and coherence_chirps < num_chirps:
        n_fft_slow = 2 * freqs.size  # slow_time_spectrum keeps half
        line_width = max(int(np.ceil(n_fft_slow / coherence_chirps)), 1)
    else:
        line_width = 1
    template = np.zeros(freqs.size)
    for rate in rates:
        template += square_wave_signature(
            rate, freqs, num_harmonics=num_harmonics, line_width_bins=line_width
        )
    norm = np.linalg.norm(template)
    if norm > 0:
        template = template / norm
    magnitudes = np.abs(spectrum)
    # Normalize each cell's template response by that cell's own
    # off-template spectral floor (a Doppler-domain CFAR).  A clutter cell
    # whose slow-time residue is broadband raises its own floor and scores
    # ~1, while a tag cell concentrates energy exactly on the template.
    guard = max(2, (line_width + 1) // 2 + 1)
    exclude = template > 0
    # Also exclude EVERY harmonic of each rate (odd beyond the template,
    # and even ones from duty-cycle asymmetry and bit-boundary transients):
    # they belong to the tag, not to the floor.
    for rate in rates:
        harmonic = rate
        while harmonic <= freqs[-1]:
            exclude[int(np.argmin(np.abs(freqs - harmonic)))] = True
            harmonic += rate
    for _ in range(guard):
        exclude = exclude | np.roll(exclude, 1) | np.roll(exclude, -1)
    exclude[: guard + 1] = True
    floor_rows = magnitudes[~exclude, :]
    if floor_rows.shape[0] == 0:
        raise DetectionError("template leaves no off-template bins for the floor")
    floors = np.median(floor_rows, axis=0) + 1e-30
    raw_scores = template @ magnitudes
    normalized = raw_scores / floors
    # Two-stage decision: the normalized (Doppler-CFAR) score rejects
    # clutter cells whose broadband residue mimics raw template energy, but
    # it plateaus across the tag's range skirt; the raw response is sharply
    # peaked there.  Gate on the normalized score, then take the raw peak
    # inside the gate.
    valid = ranges >= min_range_m
    if not np.any(valid):
        raise DetectionError(f"min_range_m={min_range_m} excludes every range bin")
    gate = valid & (normalized >= 0.5 * normalized[valid].max())
    scores = np.where(gate, raw_scores, 0.0)
    best = int(np.argmax(scores))
    score = float(raw_scores[best])
    # Presence test: the winning cell's CFAR score against the population
    # median.  The median self-calibrates for template width (a wider
    # template collects more noise bins everywhere), so a fixed ratio works
    # across configurations.
    median_normalized = float(np.median(normalized[valid]))
    if median_normalized <= 0 or normalized[best] < presence_threshold * median_normalized:
        raise DetectionError("no cell shows a tag-modulation signature above the floor")
    refined_range = ranges[best]
    if 0 < best < raw_scores.size - 1:
        delta = parabolic_peak_offset(
            raw_scores[best - 1] ** 2, raw_scores[best] ** 2, raw_scores[best + 1] ** 2
        )
        bin_width = ranges[1] - ranges[0]
        refined_range = ranges[best] + delta * bin_width
    snr_db = max(
        _cell_tone_snr_db(
            spectrum[:, best],
            freqs,
            rate,
            num_harmonics=num_harmonics,
            line_width_bins=line_width,
        )
        for rate in rates
    )
    # Second presence check, within the winning cell: a genuine tag line
    # towers over that cell's own spectral floor, while a broadband
    # (jittery clutter / other-tag) cell winning the population test shows
    # no line at all — reject those instead of reporting a phantom tag.
    if snr_db < min_cell_snr_db:
        raise DetectionError(
            f"winning cell's line-to-floor ratio {snr_db:.1f} dB is below the "
            f"{min_cell_snr_db} dB presence requirement"
        )
    return TagDetection(
        range_m=float(refined_range),
        range_bin=best,
        signature_score=score,
        snr_db=float(snr_db),
    )


def detect_all_tags(
    aligned: np.ndarray,
    range_grid_m: np.ndarray,
    chirp_period_s: float,
    modulation_rates_hz: "Sequence[float]",
    *,
    min_range_m: float = 0.3,
    num_harmonics: int = 3,
    coherence_chirps: int | None = None,
) -> "dict[float, TagDetection | None]":
    """Locate every enrolled tag in one processed frame.

    Runs the signature matched filter once per assigned modulation rate
    (the multi-tag network's per-tag identities) and returns a mapping
    rate -> detection, with ``None`` where no tag answered at that rate —
    the radar-side half of the Section-6 multi-tag inventory.

    Caveat: the slot-rate sampling aliases each tag's square-wave
    harmonics across the whole slow-time band, so a probe at an
    unassigned rate can land on another tag's aliased harmonic and report
    that tag's cell.  Callers should treat a hit collocated with an
    already-identified tag as a harmonic alias, not a new tag — the
    network layer's rate assignment (:func:`repro.core.network.
    assign_modulation_rates`) spaces rates to keep *fundamental* lines
    apart, which is what the per-tag decode relies on.
    """
    results: "dict[float, TagDetection | None]" = {}
    for rate in modulation_rates_hz:
        try:
            results[float(rate)] = detect_modulated_tag(
                aligned,
                range_grid_m,
                chirp_period_s,
                rate,
                min_range_m=min_range_m,
                num_harmonics=num_harmonics,
                coherence_chirps=coherence_chirps,
            )
        except DetectionError:
            results[float(rate)] = None
    return results


def _cell_tone_snr_db(
    column: np.ndarray,
    freqs: np.ndarray,
    modulation_rate_hz: float,
    *,
    num_harmonics: int = 3,
    guard_bins: int = 2,
    line_width_bins: int = 1,
) -> float:
    """Spectral SNR of the modulation tone within one range cell.

    Fundamental-line power (the peak within the line's width) over the
    median off-template spectral power of the same cell — the quantity the
    paper's Fig. 15 reports as uplink SNR.
    """
    magnitudes = np.abs(np.asarray(column, dtype=float))
    fundamental = int(np.argmin(np.abs(freqs - modulation_rate_hz)))
    half_width = max((line_width_bins - 1) // 2, 0)
    low = max(fundamental - half_width, 0)
    line_power = float(np.max(magnitudes[low : fundamental + half_width + 1] ** 2))
    exclude = np.zeros(freqs.size, dtype=bool)
    exclude[: guard_bins + 1] = True  # residual DC leakage
    spread = guard_bins + half_width
    for harmonic in range(1, 2 * num_harmonics, 2):
        target = harmonic * modulation_rate_hz
        index = int(np.argmin(np.abs(freqs - target)))
        lo = max(index - spread, 0)
        exclude[lo : index + spread + 1] = True
    floor_bins = magnitudes[~exclude]
    if floor_bins.size == 0:
        raise DetectionError("no off-template bins available for the noise floor")
    floor = float(np.median(floor_bins**2))
    if floor <= 0:
        floor = 1e-30
    return float(10.0 * np.log10(line_power / floor))
