"""Ablation A1: the analytic frontend matches the circuit-level chain.

The analytic frontend asserts that the decoder chain reduces to a tone at
``alpha * dT`` (Eq. 9).  These tests run the actual sampled circuit —
split, two delay lines, combine, square-law detect, RC filter, ADC — at a
scaled-down bandwidth and verify the analytic model's predictions: beat
frequency (both complex-envelope and real-passband), linear Eq. 11 scaling,
and decodability of the circuit output by the standard decoder machinery.
"""

import numpy as np
import pytest

from repro.components.adc import ADC
from repro.components.delay_line import CoaxialDelayLine
from repro.components.envelope_detector import EnvelopeDetector
from repro.tag.frontend import SampledTagFrontend
from repro.utils.dsp import dominant_frequency
from repro.waveform.parameters import ChirpParameters


def make_frontend(delta_t_s=2e-6, adc_rate=2e6, baseband_rate=20e6):
    short = CoaxialDelayLine(length_m=0.1, loss_db_per_m_at_1ghz=0.0)
    long = CoaxialDelayLine(
        length_m=0.1 + 0.7 * 299792458.0 * delta_t_s, loss_db_per_m_at_1ghz=0.0
    )
    return SampledTagFrontend(
        line_short=short,
        line_long=long,
        detector=EnvelopeDetector(lowpass_cutoff_hz=300e3, output_noise_v_per_rt_hz=1e-12),
        adc=ADC(sample_rate_hz=adc_rate),
        baseband_sample_rate_hz=baseband_rate,
    )


class TestCircuitBeatFrequency:
    @pytest.mark.parametrize("duration_us", [50, 100, 200])
    def test_complex_envelope_matches_eq11(self, duration_us):
        frontend = make_frontend()
        chirp = ChirpParameters(
            start_frequency_hz=100e6, bandwidth_hz=5e6, duration_s=duration_us * 1e-6
        )
        capture = frontend.capture_chirp(chirp, input_amplitude_v=0.1, rng=0)
        expected = frontend.expected_beat_hz(chirp)
        measured = dominant_frequency(
            capture.samples, capture.sample_rate_hz, min_frequency_hz=5e3
        )
        assert measured == pytest.approx(expected, rel=0.01)

    def test_real_passband_matches_envelope_model(self):
        frontend = make_frontend(baseband_rate=80e6)
        chirp = ChirpParameters(
            start_frequency_hz=10e6, bandwidth_hz=5e6, duration_s=100e-6
        )
        capture = frontend.capture_chirp(
            chirp, input_amplitude_v=0.1, rng=0, use_real_passband=True
        )
        expected = frontend.expected_beat_hz(chirp)
        measured = dominant_frequency(
            capture.samples, capture.sample_rate_hz, min_frequency_hz=5e3
        )
        assert measured == pytest.approx(expected, rel=0.02)

    def test_linear_in_inverse_duration(self):
        """Fig. 5: beat frequency is linear in 1/T_chirp."""
        frontend = make_frontend()
        inverse_durations = []
        beats = []
        for duration in (50e-6, 80e-6, 125e-6, 200e-6):
            chirp = ChirpParameters(
                start_frequency_hz=100e6, bandwidth_hz=5e6, duration_s=duration
            )
            capture = frontend.capture_chirp(chirp, input_amplitude_v=0.1, rng=1)
            beats.append(
                dominant_frequency(capture.samples, capture.sample_rate_hz, min_frequency_hz=5e3)
            )
            inverse_durations.append(1.0 / duration)
        slope, intercept = np.polyfit(inverse_durations, beats, 1)
        # Slope should equal B * dT (Eq. 11), intercept ~ 0.
        assert slope == pytest.approx(5e6 * frontend.delta_t_s, rel=0.02)
        assert abs(intercept) < 0.05 * max(beats)

    def test_beat_scales_with_bandwidth(self):
        frontend = make_frontend()
        beats = {}
        for bandwidth in (2.5e6, 5e6):
            chirp = ChirpParameters(
                start_frequency_hz=100e6, bandwidth_hz=bandwidth, duration_s=100e-6
            )
            capture = frontend.capture_chirp(chirp, input_amplitude_v=0.1, rng=2)
            beats[bandwidth] = dominant_frequency(
                capture.samples, capture.sample_rate_hz, min_frequency_hz=5e3
            )
        assert beats[5e6] == pytest.approx(2 * beats[2.5e6], rel=0.05)


class TestCircuitValidation:
    def test_rejects_undersampled_bandwidth(self):
        frontend = make_frontend(baseband_rate=4e6)
        chirp = ChirpParameters(start_frequency_hz=100e6, bandwidth_hz=5e6, duration_s=1e-4)
        with pytest.raises(Exception):
            frontend.capture_chirp(chirp)

    def test_rejects_passband_beyond_nyquist(self):
        frontend = make_frontend(baseband_rate=20e6)
        chirp = ChirpParameters(start_frequency_hz=100e6, bandwidth_hz=5e6, duration_s=1e-4)
        with pytest.raises(Exception):
            frontend.capture_chirp(chirp, use_real_passband=True)

    def test_line_order_enforced(self):
        short = CoaxialDelayLine(length_m=1.0)
        long = CoaxialDelayLine(length_m=0.5)
        with pytest.raises(Exception):
            SampledTagFrontend(line_short=short, line_long=long)

    def test_amplitude_scales_output(self):
        frontend = make_frontend()
        chirp = ChirpParameters(start_frequency_hz=100e6, bandwidth_hz=5e6, duration_s=1e-4)
        # Keep the video voltage well inside the ADC range so the square
        # law is observable without clipping.
        small = frontend.capture_chirp(chirp, input_amplitude_v=0.005, rng=3)
        large = frontend.capture_chirp(chirp, input_amplitude_v=0.01, rng=3)
        # Square-law: 2x input amplitude -> 4x video amplitude.
        ratio = np.ptp(large.samples) / np.ptp(small.samples)
        assert ratio == pytest.approx(4.0, rel=0.15)
