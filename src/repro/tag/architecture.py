"""The assembled BiScatter tag (paper Fig. 2 / Fig. 8).

Wires the decoder design (delay lines), the Van Atta retro-reflector with
its modulating switch, the uplink modulator, and the power model into one
object the simulation layer can place in a scene.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.channel.link_budget import DownlinkBudget
from repro.components.rf_switch import SwitchState
from repro.components.van_atta import VanAttaArray
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.core.packet import PacketFields
from repro.tag.decoder_dsp import TagDecoder
from repro.tag.frontend import AnalyticTagFrontend
from repro.tag.modulator import UplinkModulator
from repro.tag.power import PowerMode, TagPowerModel


@dataclass
class BiScatterTag:
    """A complete two-way backscatter tag.

    Parameters
    ----------
    decoder_design:
        Delay-line configuration fixing the downlink beat map.
    van_atta:
        Retro-reflective array + switch for the uplink.
    modulator:
        Uplink switch scheduling (None = downlink-only tag).
    power:
        Component power model.
    tag_id:
        Network identity (used in multi-tag downlink headers).
    """

    decoder_design: DecoderDesign
    van_atta: VanAttaArray = field(default_factory=VanAttaArray)
    modulator: UplinkModulator | None = None
    power: TagPowerModel = field(default_factory=TagPowerModel.prototype)
    tag_id: int = 0

    def frontend(self, budget: DownlinkBudget) -> AnalyticTagFrontend:
        """Analytic decode frontend bound to a downlink budget."""
        return AnalyticTagFrontend(budget=budget, delta_t_s=self.decoder_design.delta_t_s)

    def decoder(
        self,
        alphabet: CsskAlphabet,
        *,
        fields: PacketFields | None = None,
        clock_offset_ppm: float = 0.0,
    ) -> TagDecoder:
        """Downlink decoder for a shared alphabet.

        The alphabet must have been designed against this tag's delay
        lines; mismatched decoder designs would map slopes to different
        beats than the radar intends.  ``clock_offset_ppm`` models the
        tag's oscillator drift (CFO) skewing the decoder's hypothesis
        grid; 0 is the nominal, drift-free decoder.
        """
        if abs(alphabet.decoder.delta_t_s - self.decoder_design.delta_t_s) > 1e-15:
            raise ValueError(
                "alphabet was designed for a different delay-line configuration "
                f"(dT {alphabet.decoder.delta_t_s} vs tag {self.decoder_design.delta_t_s})"
            )
        return TagDecoder(alphabet, fields=fields, clock_offset_ppm=clock_offset_ppm)

    def reflective_rcs_m2(self, frequency_hz: float, *, incidence_deg: float = 0.0) -> float:
        """RCS in the retro-reflecting state."""
        return self.van_atta.rcs_m2(
            frequency_hz, incidence_deg=incidence_deg, state=SwitchState.REFLECTIVE
        )

    def modulation_amplitude_factors(
        self, frequency_hz: float, *, incidence_deg: float = 0.0
    ) -> tuple[float, float]:
        """(reflective, absorptive) slow-time amplitude factors.

        Amplitude factors are relative to the reflective-state amplitude,
        i.e. sqrt of the RCS ratio — what :class:`repro.radar.Scatterer`'s
        ``amplitude_schedule`` consumes.
        """
        reflective, absorptive = self.van_atta.modulated_rcs_amplitudes(
            frequency_hz, incidence_deg=incidence_deg
        )
        if reflective <= 0:
            raise ValueError("reflective RCS must be positive")
        return 1.0, float(np.sqrt(absorptive / reflective))

    def amplitude_schedule_for_states(
        self, states: np.ndarray, frequency_hz: float, *, incidence_deg: float = 0.0
    ) -> np.ndarray:
        """Slow-time amplitude schedule from per-chirp switch states."""
        on, off = self.modulation_amplitude_factors(frequency_hz, incidence_deg=incidence_deg)
        return np.where(np.asarray(states, dtype=bool), on, off)

    def average_power_w(self, mode: PowerMode, *, downlink_duty: float = 0.5) -> float:
        """Average power draw in an operating mode."""
        return self.power.power_w(mode, downlink_duty=downlink_duty)

    def with_modulator(self, modulator: UplinkModulator) -> "BiScatterTag":
        """A copy of this tag with an (updated) uplink modulator."""
        return replace(self, modulator=modulator)
