"""CSS-style wrap-position keying (the Section-6 future-work extension)."""

import numpy as np
import pytest

from repro.channel.link_budget import DownlinkBudget
from repro.core.css import CssAlphabet, CssDecoder, build_css_frame
from repro.core.downlink import DownlinkEncoder
from repro.core.ber import random_bits
from repro.core.packet import PacketFields
from repro.errors import AlphabetError
from repro.radar.config import XBAND_9GHZ
from repro.tag.frontend import AnalyticTagFrontend


@pytest.fixture(scope="module")
def css(alphabet):
    return CssAlphabet(cssk=alphabet, position_bits=2)


@pytest.fixture(scope="module")
def css_link(alphabet):
    encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
    budget = DownlinkBudget(
        tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
        radar_antenna=XBAND_9GHZ.antenna,
        frequency_hz=XBAND_9GHZ.center_frequency_hz,
    )
    frontend = AnalyticTagFrontend(budget=budget, delta_t_s=alphabet.decoder.delta_t_s)
    return encoder, frontend


class TestCssAlphabet:
    def test_rate_exceeds_cssk(self, css, alphabet):
        assert css.data_rate_bps() > alphabet.data_rate_bps()
        assert css.bits_per_symbol == alphabet.symbol_bits + 2

    def test_positions_inside_margins(self, css):
        fractions = css.wrap_fractions()
        assert fractions.size == 4
        assert fractions[0] == pytest.approx(css.position_margin)
        assert fractions[-1] == pytest.approx(1 - css.position_margin)

    def test_bits_roundtrip(self, css):
        rng = np.random.default_rng(0)
        for _ in range(20):
            bits = rng.integers(0, 2, css.bits_per_symbol).astype(np.uint8)
            slope, position = css.encode_bits(bits)
            np.testing.assert_array_equal(css.decode_symbol(slope, position), bits)

    def test_validation(self, alphabet):
        with pytest.raises(AlphabetError):
            CssAlphabet(cssk=alphabet, position_bits=0)
        with pytest.raises(AlphabetError):
            CssAlphabet(cssk=alphabet, position_bits=2, position_margin=0.6)
        with pytest.raises(AlphabetError):
            CssAlphabet(cssk=alphabet, position_bits=7)

    def test_bad_bit_count(self, css):
        with pytest.raises(AlphabetError):
            css.encode_bits(np.zeros(3, dtype=np.uint8))

    def test_bad_position_index(self, css):
        with pytest.raises(AlphabetError):
            css.decode_symbol(0, 4)


class TestCssFrame:
    def test_frame_carries_wrap_fractions(self, css, css_link):
        encoder, _ = css_link
        bits = random_bits(css.bits_per_symbol * 4, rng=1)
        frame, fractions, padded = build_css_frame(css, encoder, bits)
        preamble = PacketFields().preamble_length
        assert np.all(np.isnan(fractions[:preamble]))
        data_fractions = fractions[preamble:]
        assert np.all((data_fractions > 0) & (data_fractions < 1))
        assert padded.size == css.bits_per_symbol * 4

    def test_padding_applied(self, css, css_link):
        encoder, _ = css_link
        bits = random_bits(3, rng=2)  # not a symbol multiple
        _, _, padded = build_css_frame(css, encoder, bits)
        assert padded.size == css.bits_per_symbol
        np.testing.assert_array_equal(padded[:3], bits)


class TestCssDecoding:
    def decode_roundtrip(self, css, css_link, snr, trials=6):
        encoder, frontend = css_link
        decoder = CssDecoder(css)
        errors = 0
        total = 0
        for trial in range(trials):
            bits = random_bits(css.bits_per_symbol * 12, rng=trial)
            frame, fractions, padded = build_css_frame(css, encoder, bits)
            capture = frontend.capture(
                frame, 2.0, rng=trial, snr_override_db=snr, wrap_fractions=fractions
            )
            decoded = decoder.decode_payload(
                capture,
                num_symbols=padded.size // css.bits_per_symbol,
                start_slot=PacketFields().preamble_length,
            )
            errors += int(np.sum(padded[: decoded.size] != decoded))
            errors += padded.size - decoded.size
            total += padded.size
        return errors / total

    def test_clean_at_high_snr(self, css, css_link):
        assert self.decode_roundtrip(css, css_link, snr=30.0) == 0.0

    def test_robust_at_moderate_snr(self, css, css_link):
        assert self.decode_roundtrip(css, css_link, snr=14.0) < 1e-2

    def test_more_positions_degrade_gracefully(self, alphabet, css_link):
        wide = CssAlphabet(cssk=alphabet, position_bits=3)
        narrow = CssAlphabet(cssk=alphabet, position_bits=2)
        ber_wide = self.decode_roundtrip(wide, css_link, snr=10.0, trials=5)
        ber_narrow = self.decode_roundtrip(narrow, css_link, snr=10.0, trials=5)
        assert ber_wide >= ber_narrow

    def test_single_slot_demodulation(self, css, css_link):
        encoder, frontend = css_link
        decoder = CssDecoder(css)
        bits = css.decode_symbol(13, 2)
        frame, fractions, _ = build_css_frame(css, encoder, bits)
        capture = frontend.capture(
            frame, 1.0, rng=0, snr_override_db=40.0, wrap_fractions=fractions
        )
        slot = PacketFields().preamble_length
        slope, position = decoder.demodulate_slot(
            capture.slot_samples(slot), capture.sample_rate_hz
        )
        assert (slope, position) == (13, 2)

    def test_num_symbols_validated(self, css, css_link):
        _, frontend = css_link
        decoder = CssDecoder(css)
        from repro.tag.frontend import TagCapture

        capture = TagCapture(samples=np.zeros(100), sample_rate_hz=1e6)
        with pytest.raises(Exception):
            decoder.decode_payload(capture, num_symbols=0, start_slot=0)
