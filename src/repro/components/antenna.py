"""Antenna model: boresight gain with a simple beam-pattern rolloff.

Gains enter the radar-equation link budgets; the pattern matters when tags
sit off the radar boresight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import db_to_power_ratio
from repro.utils.validation import ensure_finite, ensure_positive


@dataclass(frozen=True)
class Antenna:
    """Single antenna element or fixed array, characterized by gain/beamwidth.

    Parameters
    ----------
    gain_dbi:
        Boresight gain.
    beamwidth_deg:
        3-dB beamwidth (one-sided pattern assumed symmetric); ``None``
        means isotropic-with-gain (no angular rolloff).
    """

    gain_dbi: float = 0.0
    beamwidth_deg: float | None = None

    def __post_init__(self) -> None:
        ensure_finite("gain_dbi", self.gain_dbi)
        if self.beamwidth_deg is not None:
            ensure_positive("beamwidth_deg", self.beamwidth_deg)

    def gain_db_at(self, off_boresight_deg: float = 0.0) -> float:
        """Gain toward a direction ``off_boresight_deg`` from boresight.

        Uses the standard Gaussian beam approximation:
        ``G(theta) = G0 - 12 (theta / BW_3dB)^2`` dB, floored 30 dB below
        boresight (sidelobe floor).
        """
        ensure_finite("off_boresight_deg", off_boresight_deg)
        if self.beamwidth_deg is None:
            return self.gain_dbi
        rolloff = 12.0 * (off_boresight_deg / self.beamwidth_deg) ** 2
        return self.gain_dbi - min(rolloff, 30.0)

    def gain_linear_at(self, off_boresight_deg: float = 0.0) -> float:
        """Linear power gain toward a direction."""
        return float(db_to_power_ratio(self.gain_db_at(off_boresight_deg)))


def effective_aperture_m2(gain_dbi: float, frequency_hz: float) -> float:
    """Effective aperture ``A_e = G lambda^2 / (4 pi)`` of an antenna."""
    from repro.utils.units import wavelength

    lam = wavelength(frequency_hz)
    return float(db_to_power_ratio(gain_dbi)) * lam**2 / (4.0 * np.pi)
