"""Chaos proxy: seed-deterministic fault injection for the serve protocol.

A TCP proxy that sits between a :class:`repro.serve.client.ServeClient`
and a real server and misbehaves *on purpose*: dropped connections, slow
reads, and torn/truncated NDJSON lines — the failure modes a long
streaming job meets on a real network, made reproducible.  The chaos
suite drives clients through this proxy and asserts that
``run_resilient`` reassembles results bit-identical to a clean run, with
no stored point ever recomputed.

Determinism is the design constraint, exactly as in the simulation
engines: every fault decision comes from ``random.Random(f"{seed}:{n}")``
for connection index ``n``, so a failing chaos test replays its exact
fault sequence from the seed — no flaky-by-construction testing.

Fault injection is *frame-aware* and server→client only: the proxy
forwards the client→server direction verbatim (a corrupted submit would
test the server's validation, not the recovery path) and parses the
return stream into NDJSON frames so a "torn line" is a genuine half
frame and a "drop" lands between or inside frames, never at a random
byte of nothing.  ``max_faults`` bounds the total faults injected across
the proxy's lifetime, so a retrying client always converges.
"""

from __future__ import annotations

import asyncio
import random
import threading
from dataclasses import dataclass
from typing import Any

from repro.serve.protocol import MAX_LINE_BYTES

__all__ = ["ChaosConfig", "ChaosProxy", "ChaosProxyThread"]


@dataclass(frozen=True)
class ChaosConfig:
    """What to break, how often, and under which seed."""

    target_host: str
    target_port: int
    listen_host: str = "127.0.0.1"
    listen_port: int = 0
    seed: int = 0
    #: Unconditionally drop a connection after this many forwarded
    #: server→client frames (``None`` = no fixed drop point).
    drop_after_frames: "int | None" = None
    #: Per-frame probability of dropping the connection before the frame.
    drop_probability: float = 0.0
    #: Per-frame probability of forwarding only a prefix of the frame
    #: (no trailing newline) and then dropping — a torn line.
    truncate_probability: float = 0.0
    #: Per-frame probability of a slow read (sleep before forwarding).
    delay_probability: float = 0.0
    #: How long a slow read stalls.
    delay_s: float = 0.05
    #: Total fault budget across all connections (``None`` = unlimited).
    #: A finite budget is what guarantees a retrying client converges.
    max_faults: "int | None" = None

    def __post_init__(self) -> None:
        for name in ("drop_probability", "truncate_probability",
                     "delay_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.drop_after_frames is not None and self.drop_after_frames < 0:
            raise ValueError("drop_after_frames must be >= 0")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("max_faults must be >= 0")


class ChaosProxy:
    """The asyncio proxy itself; construct, ``await start()``, connect."""

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self._server: "asyncio.AbstractServer | None" = None
        self._connections = 0
        self._faults_left = config.max_faults  # None = unlimited
        self.counters: "dict[str, int]" = {
            "connections": 0,
            "frames_forwarded": 0,
            "drops": 0,
            "truncations": 0,
            "delays": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle,
            host=self.config.listen_host,
            port=self.config.listen_port,
        )

    @property
    def host(self) -> str:
        return self._server.sockets[0].getsockname()[0]

    @property
    def port(self) -> int:
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- fault accounting ----------------------------------------------------

    def _spend_fault(self) -> bool:
        """Claim one unit of the fault budget (False = budget exhausted)."""
        if self._faults_left is None:
            return True
        if self._faults_left <= 0:
            return False
        self._faults_left -= 1
        return True

    # -- the proxying --------------------------------------------------------

    async def _handle(self, client_reader: asyncio.StreamReader,
                      client_writer: asyncio.StreamWriter) -> None:
        self._connections += 1
        self.counters["connections"] += 1
        rng = random.Random(f"{self.config.seed}:{self._connections}")
        try:
            server_reader, server_writer = await asyncio.open_connection(
                self.config.target_host, self.config.target_port,
                limit=MAX_LINE_BYTES + 2,
            )
        except OSError:
            client_writer.close()
            return
        upstream = asyncio.ensure_future(
            self._pump_raw(client_reader, server_writer)
        )
        try:
            await self._pump_frames(rng, server_reader, client_writer)
        finally:
            upstream.cancel()
            try:
                await upstream
            except (asyncio.CancelledError, ConnectionError):
                pass
            for writer in (client_writer, server_writer):
                try:
                    writer.close()
                except RuntimeError:
                    pass

    @staticmethod
    async def _pump_raw(reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter) -> None:
        """Client→server direction: forward verbatim, no chaos."""
        try:
            while True:
                chunk = await reader.read(1 << 16)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _pump_frames(self, rng: "random.Random",
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        """Server→client direction: forward frames, injecting chaos."""
        forwarded = 0
        try:
            while True:
                try:
                    frame = await reader.readuntil(b"\n")
                except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                        ConnectionError):
                    break
                action = self._decide(rng, forwarded)
                if action == "drop":
                    self.counters["drops"] += 1
                    break
                if action == "truncate":
                    self.counters["truncations"] += 1
                    torn = frame[:max(1, len(frame) // 2)].rstrip(b"\n")
                    writer.write(torn)
                    await writer.drain()
                    break
                if action == "delay":
                    self.counters["delays"] += 1
                    await asyncio.sleep(self.config.delay_s)
                writer.write(frame)
                await writer.drain()
                forwarded += 1
                self.counters["frames_forwarded"] += 1
        except (ConnectionError, OSError):
            pass

    def _decide(self, rng: "random.Random", forwarded: int) -> str:
        """The fate of the next frame: forward | delay | truncate | drop."""
        config = self.config
        if (config.drop_after_frames is not None
                and forwarded >= config.drop_after_frames
                and self._spend_fault()):
            return "drop"
        # One rng draw per configured hazard, in a fixed order, so the
        # fault sequence is a pure function of (seed, connection, frame).
        if config.drop_probability:
            if (rng.random() < config.drop_probability
                    and self._spend_fault()):
                return "drop"
        if config.truncate_probability:
            if (rng.random() < config.truncate_probability
                    and self._spend_fault()):
                return "truncate"
        if config.delay_probability:
            if (rng.random() < config.delay_probability
                    and self._spend_fault()):
                return "delay"
        return "forward"


class ChaosProxyThread:
    """A live chaos proxy on a background thread (mirrors ServerThread).

    ::

        with ChaosProxyThread(ChaosConfig(target_host=h, target_port=p,
                                          drop_after_frames=3)) as chaos:
            client = ServeClient(chaos.host, chaos.port)
            ...
    """

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self.proxy: "ChaosProxy | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self._started = threading.Event()
        self._stop: "asyncio.Event | None" = None
        self.host: "str | None" = None
        self.port: "int | None" = None

    def __enter__(self) -> "ChaosProxyThread":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("chaos proxy thread failed to start")
        return self

    def _run(self) -> None:
        async def main() -> None:
            self.proxy = ChaosProxy(self.config)
            await self.proxy.start()
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self.host = self.proxy.host
            self.port = self.proxy.port
            self._started.set()
            await self._stop.wait()
            await self.proxy.close()

        asyncio.run(main())

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    @property
    def counters(self) -> "dict[str, Any]":
        return dict(self.proxy.counters) if self.proxy is not None else {}
