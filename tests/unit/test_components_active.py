"""Active / sampling components: envelope detector, ADC, antenna, amplifier."""

import numpy as np
import pytest

from repro.components.adc import ADC
from repro.components.amplifier import Amplifier, cascade_noise_figure_db
from repro.components.antenna import Antenna, effective_aperture_m2
from repro.components.envelope_detector import EnvelopeDetector


class TestEnvelopeDetector:
    def test_square_law_scaling(self):
        detector = EnvelopeDetector(responsivity_v_per_w=2000.0)
        assert detector.detect_power(1e-6) == pytest.approx(2e-3)

    def test_output_noise_scales_with_sqrt_bandwidth(self):
        detector = EnvelopeDetector()
        assert detector.output_noise_rms_v(400e3) == pytest.approx(
            2 * detector.output_noise_rms_v(100e3)
        )

    def test_detect_produces_beat_of_two_delayed_tones(self):
        # Two complex tones offset by 50 kHz -> video beat at 50 kHz.
        fs = 10e6
        t = np.arange(5000) / fs
        detector = EnvelopeDetector(lowpass_cutoff_hz=200e3)
        envelope = np.exp(2j * np.pi * 0 * t) + np.exp(2j * np.pi * 50e3 * t)
        video = detector.detect(envelope, fs)
        from repro.utils.dsp import dominant_frequency

        assert dominant_frequency(video, fs, min_frequency_hz=10e3) == pytest.approx(
            50e3, rel=0.02
        )

    def test_detect_real_rejects_rf_keeps_beat(self):
        fs = 50e6
        t = np.arange(20000) / fs
        rf = np.cos(2 * np.pi * 5e6 * t) + np.cos(2 * np.pi * 5.05e6 * t)
        detector = EnvelopeDetector(lowpass_cutoff_hz=200e3)
        video = detector.detect_real(rf, fs)
        from repro.utils.dsp import dominant_frequency

        assert dominant_frequency(video, fs, min_frequency_hz=10e3) == pytest.approx(
            50e3, rel=0.05
        )

    def test_video_gain_rolloff(self):
        detector = EnvelopeDetector(lowpass_cutoff_hz=400e3)
        assert detector.video_gain_at(0.0) == pytest.approx(1.0)
        assert detector.video_gain_at(400e3) == pytest.approx(1 / np.sqrt(2), rel=1e-6)
        with pytest.raises(ValueError):
            detector.video_gain_at(-1.0)

    def test_power_consumption_default_matches_paper(self):
        # Paper Section 4.1: envelope detector ~8 mW.
        assert EnvelopeDetector().power_consumption_w == pytest.approx(8e-3)


class TestADC:
    def test_lsb(self):
        adc = ADC(sample_rate_hz=1e6, bits=12, full_scale_v=1.0)
        assert adc.lsb_v == pytest.approx(2.0 / 4096)

    def test_quantization_noise(self):
        adc = ADC(bits=12)
        assert adc.quantization_noise_rms_v == pytest.approx(adc.lsb_v / np.sqrt(12))

    def test_nyquist(self):
        assert ADC(sample_rate_hz=1e6).nyquist_hz() == 500e3

    def test_downsampling_preserves_tone(self):
        from repro.utils.dsp import dominant_frequency

        fs_in = 20e6
        t = np.arange(20000) / fs_in
        x = 0.5 * np.cos(2 * np.pi * 100e3 * t)
        adc = ADC(sample_rate_hz=2e6, bits=12)
        y = adc.sample(x, fs_in)
        assert dominant_frequency(y, 2e6, min_frequency_hz=10e3) == pytest.approx(
            100e3, rel=0.01
        )

    def test_identity_rate_keeps_length(self):
        adc = ADC(sample_rate_hz=1e6)
        x = np.random.default_rng(0).normal(size=1000) * 0.1
        y = adc.sample(x, 1e6)
        assert y.size == x.size

    def test_clipping(self):
        adc = ADC(bits=8, full_scale_v=1.0)
        y = adc.quantize(np.array([10.0]))
        assert y[0] < 1.0

    def test_jitter_adds_noise_on_fast_signal(self):
        fs = 10e6
        t = np.arange(10000) / fs
        x = np.sin(2 * np.pi * 1e6 * t)
        clean = ADC(sample_rate_hz=10e6, bits=16).sample(x, fs)
        jittered = ADC(sample_rate_hz=10e6, bits=16, aperture_jitter_s=2e-8).sample(
            x, fs, rng=0
        )
        assert np.std(jittered - clean) > 1e-3

    def test_empty_signal(self):
        adc = ADC()
        assert adc.sample(np.array([]), 1e6).size == 0

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ADC(bits=0)


class TestAntenna:
    def test_boresight_gain(self):
        antenna = Antenna(gain_dbi=20.0, beamwidth_deg=18.0)
        assert antenna.gain_db_at(0.0) == 20.0

    def test_3db_at_beamwidth_over_2(self):
        antenna = Antenna(gain_dbi=20.0, beamwidth_deg=18.0)
        # Gaussian model: -12 (theta/BW)^2 -> -3 dB at theta = BW/2.
        assert antenna.gain_db_at(9.0) == pytest.approx(17.0)

    def test_sidelobe_floor(self):
        antenna = Antenna(gain_dbi=20.0, beamwidth_deg=10.0)
        assert antenna.gain_db_at(90.0) == pytest.approx(-10.0)

    def test_isotropic_no_rolloff(self):
        antenna = Antenna(gain_dbi=5.0)
        assert antenna.gain_db_at(60.0) == 5.0

    def test_linear_gain(self):
        antenna = Antenna(gain_dbi=10.0)
        assert antenna.gain_linear_at(0.0) == pytest.approx(10.0)

    def test_effective_aperture(self):
        # A_e = G lambda^2 / 4pi; 0 dBi at 3 GHz -> (0.1m)^2/4pi
        aperture = effective_aperture_m2(0.0, 2.9979e9)
        assert aperture == pytest.approx(0.01 / (4 * np.pi), rel=1e-3)


class TestAmplifier:
    def test_linear_gain_region(self):
        amp = Amplifier(gain_db=20.0, output_p1db_dbm=10.0)
        out = amp.output_power_w(1e-9)
        assert out == pytest.approx(1e-7, rel=0.01)

    def test_compression_near_p1db(self):
        amp = Amplifier(gain_db=20.0, output_p1db_dbm=0.0)
        # Drive way past saturation: output approaches a ceiling.
        big = amp.output_power_w(1.0)
        bigger = amp.output_power_w(10.0)
        assert bigger < 2 * big

    def test_rejects_nonpositive_input(self):
        with pytest.raises(Exception):
            Amplifier().output_power_w(0.0)

    def test_friis_cascade_single_stage(self):
        assert cascade_noise_figure_db([(20.0, 3.0)]) == pytest.approx(3.0)

    def test_friis_cascade_lna_dominates(self):
        nf = cascade_noise_figure_db([(20.0, 2.0), (10.0, 10.0)])
        assert 2.0 < nf < 3.0

    def test_friis_empty_rejected(self):
        with pytest.raises(ValueError):
            cascade_noise_figure_db([])
