"""Serve client sessions: per-connection read loop and outgoing stream.

A :class:`ClientSession` wraps one TCP connection.  Incoming frames are
dispatched on the event loop (submit / cancel / status / metrics / ping /
shutdown); outgoing frames go through a bounded per-session queue drained
by a writer task, so one slow reader cannot stall the scheduler's
delivery loop — a session that falls ``queue_limit`` frames behind is
disconnected instead (its jobs are then cancelled like any disconnect).

Disconnect semantics: when the read loop ends — clean EOF, reset, or a
protocol violation — every job the session still owns is cancelled via
:meth:`repro.serve.scheduler.JobScheduler.cancel_job`, which drops queued
points nobody else subscribes to while letting running points finish
into the store.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro import obs
from repro.errors import ServeError
from repro.obs import runtime as _obs_runtime
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    decode_line,
    encode_message,
    parse_job,
    select_points,
)

__all__ = ["ClientSession"]


class ClientSession:
    """One connected client: read loop, job book-keeping, outgoing queue."""

    def __init__(self, server, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, session_id: int,
                 queue_limit: int = 1024) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.session_id = session_id
        self.jobs: "dict[str, Any]" = {}  # client job id -> scheduler Job
        self._outgoing: "asyncio.Queue" = asyncio.Queue(maxsize=queue_limit)
        self._writer_task: "asyncio.Task | None" = None
        self._closing = False

    # -- outgoing ------------------------------------------------------------

    def send(self, message: "dict[str, Any]") -> None:
        """Enqueue one frame; drops the connection if the client is stuck."""
        if self._closing:
            return
        try:
            self._outgoing.put_nowait(message)
        except asyncio.QueueFull:
            self._closing = True
            if _obs_runtime._enabled:
                obs.inc("serve.sessions.overflowed")
                obs.log("serve.session.overflow", session=self.session_id)
            self.writer.close()

    async def _write_loop(self) -> None:
        try:
            while True:
                message = await self._outgoing.get()
                self.writer.write(encode_message(message))
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError, RuntimeError):
            pass

    # -- incoming ------------------------------------------------------------

    async def run(self) -> None:
        """Serve this connection until EOF/error, then clean up."""
        self._writer_task = asyncio.ensure_future(self._write_loop())
        if _obs_runtime._enabled:
            obs.inc("serve.sessions.opened")
        try:
            while not self._closing:
                try:
                    line = await self.reader.readuntil(b"\n")
                except asyncio.LimitOverrunError as overrun:
                    # Over-long frame.  The stream is still framed — a
                    # newline boundary exists somewhere ahead — so skip
                    # to it, report, and keep the session alive instead
                    # of tearing the connection down.
                    dropped = await self._resync(overrun.consumed)
                    if dropped is None:
                        break  # EOF arrived inside the bad frame
                    if _obs_runtime._enabled:
                        obs.inc("serve.sessions.resynced")
                        obs.log(
                            "serve.session.resynced",
                            session=self.session_id, dropped_bytes=dropped,
                        )
                    self.send({
                        "type": "error",
                        "code": "frame_too_long",
                        "message": (
                            f"frame exceeds {MAX_LINE_BYTES} bytes; dropped "
                            f"{dropped} bytes and resynchronized at the next "
                            "newline"
                        ),
                        "resynced": True,
                    })
                    continue
                except (ConnectionError, ValueError,
                        asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                try:
                    self._dispatch(decode_line(line))
                except ServeError as error:
                    self.send({"type": "error", "message": str(error)})
        finally:
            await self._close()

    async def _resync(self, buffered: int) -> "int | None":
        """Discard the rest of an over-long line; bytes dropped, None on EOF.

        ``readuntil`` leaves the overrunning bytes in the stream buffer
        (``LimitOverrunError.consumed`` counts them), so recovery is:
        drain exactly those, then keep scanning until the terminating
        newline passes — possibly overrunning the limit a few more times
        for a very long line.
        """
        dropped = 0
        try:
            dropped += buffered
            await self.reader.readexactly(buffered)
            while True:
                try:
                    tail = await self.reader.readuntil(b"\n")
                except asyncio.LimitOverrunError as overrun:
                    dropped += overrun.consumed
                    await self.reader.readexactly(overrun.consumed)
                    continue
                return dropped + len(tail)
        except (ConnectionError, asyncio.IncompleteReadError):
            return None

    def _dispatch(self, message: "dict[str, Any]") -> None:
        handler = {
            "submit": self._handle_submit,
            "cancel": self._handle_cancel,
            "status": self._handle_status,
            "metrics": self._handle_metrics,
            "ping": self._handle_ping,
            "shutdown": self._handle_shutdown,
        }.get(message.get("type"))
        if handler is None:
            raise ServeError(f"unknown message type {message.get('type')!r}")
        handler(message)

    def _handle_submit(self, message: "dict[str, Any]") -> None:
        client_id = message.get("id")
        if not isinstance(client_id, str) or not client_id:
            raise ServeError("submit requires a non-empty string \"id\"")
        if client_id in self.jobs:
            raise ServeError(f"job id {client_id!r} already in use")
        priority = message.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ServeError("priority must be an integer")
        raw_job = message.get("job")
        parsed = parse_job(raw_job)
        subset = message.get("points")
        point_indices = None
        if subset is not None:
            # A resuming client asking only for its gap: the job streams
            # the selected points as indices 0..n-1; the client owns the
            # mapping back to original positions.
            parsed = select_points(parsed, subset)
            point_indices = tuple(subset)
        reply, job = self.server.scheduler.submit(
            self, client_id, parsed, priority,
            raw_job=raw_job, point_indices=point_indices,
        )
        if job is not None:
            self.jobs[client_id] = job
        self.send(reply)

    def finish_job(self, job) -> None:
        """Called by the scheduler once a job's final point is delivered."""
        self.jobs.pop(job.client_id, None)

    def _handle_cancel(self, message: "dict[str, Any]") -> None:
        client_id = message.get("id")
        job = self.jobs.pop(client_id, None)
        if job is None:
            raise ServeError(f"no active job with id {client_id!r}")
        cancelled = self.server.scheduler.cancel_job(job)
        self.send({
            "type": "cancelled", "id": client_id,
            "points_cancelled": cancelled,
        })

    def _handle_status(self, message: "dict[str, Any]") -> None:
        self.send({"type": "status_ok", **self.server.status_payload()})

    def _handle_metrics(self, message: "dict[str, Any]") -> None:
        self.send({
            "type": "metrics_ok",
            "enabled": obs.enabled(),
            "metrics": obs.snapshot(),
        })

    def _handle_ping(self, message: "dict[str, Any]") -> None:
        self.send({"type": "pong"})

    def _handle_shutdown(self, message: "dict[str, Any]") -> None:
        self.send({"type": "shutting_down"})
        self.server.request_shutdown()

    # -- teardown ------------------------------------------------------------

    async def _close(self) -> None:
        self._closing = True
        for job in self.jobs.values():
            if not job.cancelled:
                self.server.scheduler.cancel_job(job, reason="disconnect")
        self.jobs.clear()
        if _obs_runtime._enabled:
            obs.inc("serve.sessions.closed")
        # Let queued frames flush before tearing the writer down; bounded
        # wait so a dead peer cannot wedge shutdown.
        if self._writer_task is not None:
            try:
                await asyncio.wait_for(self._flush(), timeout=2.0)
            except (asyncio.TimeoutError, ConnectionError):
                pass
            self._writer_task.cancel()
            try:
                await self._writer_task
            except asyncio.CancelledError:
                pass
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass
        self.server.forget_session(self)

    async def _flush(self) -> None:
        while not self._outgoing.empty():
            await asyncio.sleep(0.01)
