"""DSP kernels: Goertzel, spectra, peak interpolation, windows, quantizer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.dsp import (
    SlidingWindowSpec,
    dominant_frequency,
    envelope_rc_lowpass,
    envelope_rc_lowpass_fast,
    goertzel_power,
    goertzel_power_many,
    next_pow2,
    parabolic_peak_offset,
    quantize_uniform,
    real_tone_power_spectrum,
    sliding_windows,
)


def tone(freq, fs, n, amplitude=1.0, phase=0.0):
    return amplitude * np.cos(2 * np.pi * freq * np.arange(n) / fs + phase)


class TestGoertzel:
    def test_matched_tone_power(self):
        x = tone(50e3, 1e6, 1000, amplitude=2.0)
        power = goertzel_power(x, 50e3, 1e6)
        assert power == pytest.approx((2.0 / 2) ** 2, rel=0.05)

    def test_mismatched_tone_low_power(self):
        x = tone(50e3, 1e6, 1000)
        assert goertzel_power(x, 150e3, 1e6) < 0.01

    def test_matches_vectorized_version(self):
        x = tone(80e3, 1e6, 500, amplitude=0.7, phase=1.1)
        scalar = goertzel_power(x, 80e3, 1e6)
        vector = goertzel_power_many(x, np.array([80e3]), 1e6)[0]
        assert scalar == pytest.approx(vector, rel=1e-9)

    def test_many_frequencies_ranks_correctly(self):
        x = tone(100e3, 1e6, 800)
        freqs = np.array([50e3, 100e3, 200e3])
        powers = goertzel_power_many(x, freqs, 1e6)
        assert np.argmax(powers) == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            goertzel_power(np.array([]), 1e3, 1e6)

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            goertzel_power(np.ones(10), 1e3, 0.0)


class TestSpectrum:
    def test_tone_peak_location(self):
        freqs, power = real_tone_power_spectrum(tone(100e3, 1e6, 1024), 1e6)
        assert freqs[np.argmax(power)] == pytest.approx(100e3, rel=0.02)

    def test_tone_peak_power_scaling(self):
        _, power = real_tone_power_spectrum(tone(125e3, 1e6, 4096, amplitude=2.0), 1e6, window="rect")
        assert power.max() == pytest.approx(1.0, rel=0.05)

    def test_unknown_window_rejected(self):
        with pytest.raises(ConfigurationError):
            real_tone_power_spectrum(np.ones(16), 1e6, window="kaiser7")

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            real_tone_power_spectrum(np.ones(1), 1e6)


class TestDominantFrequency:
    def test_exact_bin(self):
        est = dominant_frequency(tone(100e3, 1e6, 1000), 1e6)
        assert est == pytest.approx(100e3, rel=1e-3)

    def test_off_bin_with_interpolation(self):
        est = dominant_frequency(tone(100.4e3, 1e6, 1000), 1e6)
        assert est == pytest.approx(100.4e3, rel=2e-3)

    def test_min_frequency_skips_low_tone(self):
        x = tone(10e3, 1e6, 2000, amplitude=5.0) + tone(200e3, 1e6, 2000)
        est = dominant_frequency(x, 1e6, min_frequency_hz=50e3)
        assert est == pytest.approx(200e3, rel=0.01)

    def test_dc_pedestal_rejected(self):
        x = 10.0 + tone(30e3, 1e6, 2000, amplitude=0.5)
        est = dominant_frequency(x, 1e6, min_frequency_hz=5e3)
        assert est == pytest.approx(30e3, rel=0.02)

    def test_impossible_min_frequency(self):
        with pytest.raises(ConfigurationError):
            dominant_frequency(np.ones(64), 1e6, min_frequency_hz=1e9)


class TestParabolic:
    def test_symmetric_peak_no_offset(self):
        assert parabolic_peak_offset(1.0, 2.0, 1.0) == 0.0

    def test_right_leaning(self):
        assert parabolic_peak_offset(1.0, 2.0, 1.5) > 0

    def test_left_leaning(self):
        assert parabolic_peak_offset(1.5, 2.0, 1.0) < 0

    def test_degenerate_flat(self):
        assert parabolic_peak_offset(1.0, 1.0, 1.0) == 0.0

    def test_bounded(self):
        assert abs(parabolic_peak_offset(0.0, 1.0, 1.0)) <= 0.5


class TestSlidingWindows:
    def test_starts(self):
        spec = SlidingWindowSpec(window_samples=4, hop_samples=2)
        np.testing.assert_array_equal(spec.starts(10), [0, 2, 4, 6])

    def test_too_short_signal(self):
        spec = SlidingWindowSpec(window_samples=100, hop_samples=10)
        assert spec.starts(50).size == 0

    def test_view_contents(self):
        spec = SlidingWindowSpec(window_samples=3, hop_samples=3)
        view = sliding_windows(np.arange(9, dtype=float), spec)
        np.testing.assert_array_equal(view[1], [3.0, 4.0, 5.0])

    def test_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowSpec(window_samples=0, hop_samples=1)


class TestRcLowpass:
    def test_dc_passthrough(self):
        out = envelope_rc_lowpass_fast(np.ones(500), 1e6, 100e3)
        assert out[-1] == pytest.approx(1.0, rel=1e-3)

    def test_attenuates_high_frequency(self):
        x = tone(400e3, 1e6, 2000)
        out = envelope_rc_lowpass_fast(x, 1e6, 20e3)
        assert np.std(out[500:]) < 0.1 * np.std(x)

    def test_slow_and_fast_agree(self):
        x = np.random.default_rng(0).normal(size=300)
        slow = envelope_rc_lowpass(x, 1e6, 50e3)
        fast = envelope_rc_lowpass_fast(x, 1e6, 50e3)
        np.testing.assert_allclose(slow, fast, atol=1e-9)

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ConfigurationError):
            envelope_rc_lowpass_fast(np.ones(10), 1e6, 0.0)


class TestQuantizer:
    def test_preserves_in_range_values_coarsely(self):
        x = np.linspace(-0.9, 0.9, 100)
        y = quantize_uniform(x, 12, 1.0)
        assert np.max(np.abs(x - y)) <= 2.0 / 2**12

    def test_clips(self):
        y = quantize_uniform(np.array([5.0, -5.0]), 8, 1.0)
        assert y[0] <= 1.0 and y[1] >= -1.0

    def test_one_bit(self):
        y = quantize_uniform(np.array([-0.7, 0.7]), 1, 1.0)
        assert y[0] == pytest.approx(-0.5)
        assert y[1] == pytest.approx(0.5)

    def test_rejects_bad_bits(self):
        with pytest.raises(ConfigurationError):
            quantize_uniform(np.ones(4), 0, 1.0)


class TestNextPow2:
    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 2), (3, 4), (1000, 1024), (1024, 1024)])
    def test_values(self, n, expected):
        assert next_pow2(n) == expected

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            next_pow2(0)


class TestFineToneFrequency:
    def test_unbiased_on_few_cycle_tone(self):
        from repro.utils.dsp import fine_tone_frequency

        fs = 1e6
        true = 61.7e3
        x = 1.0 + 0.8 * np.cos(2 * np.pi * true * np.arange(96) / fs + 1.1)
        coarse = dominant_frequency(x, fs, min_frequency_hz=5e3)
        fine = fine_tone_frequency(x, fs, coarse)
        assert abs(fine - true) < abs(coarse - true) + 1.0
        assert fine == pytest.approx(true, rel=2e-3)

    def test_robust_to_dc_pedestal(self):
        from repro.utils.dsp import fine_tone_frequency

        fs = 1e6
        true = 45.2e3
        x = 10.0 + 0.1 * np.cos(2 * np.pi * true * np.arange(200) / fs)
        fine = fine_tone_frequency(x, fs, 44e3, span_fraction=0.1)
        assert fine == pytest.approx(true, rel=2e-3)

    def test_validates_inputs(self):
        from repro.utils.dsp import fine_tone_frequency

        with pytest.raises(ConfigurationError):
            fine_tone_frequency(np.ones(4), 1e6, 10e3)
        with pytest.raises(ConfigurationError):
            fine_tone_frequency(np.ones(100), 1e6, -5.0)
        with pytest.raises(ConfigurationError):
            fine_tone_frequency(np.ones(100), 1e6, 10e3, points=4)
