"""Machine-readable experiment artifacts: sweep files and bench JSON.

Two artifact families:

* **Sweep results** — :func:`save_sweep_result` / :func:`load_sweep_result`
  round-trip a :class:`~repro.sim.results.SweepResult` through a plain
  JSON file, bit-exactly for parameters and values (Python's JSON float
  encoding is shortest-round-trip).  The volatile
  ``metadata["_execution"]`` timing block is dropped on save — it is
  wall-clock noise, and keeping artifacts timing-free is what makes two
  artifacts from different machines comparable.

* **Bench trajectories** — :func:`write_bench_json` emits the
  standardized ``BENCH_<name>.json`` record the perf trajectory is built
  from: schema-versioned, with the bench's headline numbers and its
  wall-clock, written atomically so a crashed bench never leaves a
  truncated artifact.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time
from typing import Any

import numpy as np

from repro.errors import StoreError
from repro.sim.executor import strip_execution
from repro.sim.results import SweepResult
from repro.store.cache import _atomic_write_bytes

#: Version tag for both artifact families; bump on layout changes.
#: v2: bench records carry a ``metrics`` block (observability registry
#: snapshot); v1 records load with an empty block.
ARTIFACT_VERSION = 2

#: Environment override for where ``BENCH_*.json`` files land.
BENCH_JSON_DIR_ENV = "REPRO_BENCH_JSON_DIR"


def save_sweep_result(path: "str | os.PathLike[str]", result: SweepResult) -> pathlib.Path:
    """Persist a sweep series as JSON (timing side channel stripped)."""
    record = {
        "artifact_version": ARTIFACT_VERSION,
        "kind": "sweep_result",
        "label": result.label,
        "parameters": [float(p) for p in result.parameters],
        "values": [float(v) for v in result.values],
        "metadata": strip_execution(result.metadata),
    }
    target = pathlib.Path(path)
    try:
        encoded = json.dumps(record, sort_keys=True, indent=2).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise StoreError(
            f"sweep metadata is not JSON-serializable: {error}"
        ) from error
    _atomic_write_bytes(target, encoded)
    return target


def load_sweep_result(path: "str | os.PathLike[str]") -> SweepResult:
    """Load a sweep saved by :func:`save_sweep_result` (exact round-trip)."""
    try:
        record = json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError) as error:
        raise StoreError(f"cannot read sweep artifact {path}: {error}") from error
    if not isinstance(record, dict) or record.get("kind") != "sweep_result":
        raise StoreError(f"{path} is not a sweep_result artifact")
    if record.get("artifact_version", 0) > ARTIFACT_VERSION:
        raise StoreError(
            f"sweep artifact {path} is version {record['artifact_version']}, "
            f"newer than this library (v{ARTIFACT_VERSION})"
        )
    return SweepResult(
        label=str(record["label"]),
        parameters=[float(p) for p in record["parameters"]],
        values=[float(v) for v in record["values"]],
        metadata=dict(record.get("metadata", {})),
    )


def bench_json_path(name: str, directory: "str | os.PathLike[str] | None" = None) -> pathlib.Path:
    """Where ``BENCH_<name>.json`` lands (arg > env var > current dir)."""
    if directory is None:
        directory = os.environ.get(BENCH_JSON_DIR_ENV, ".")
    return pathlib.Path(directory) / f"BENCH_{name}.json"


def write_bench_json(
    name: str,
    *,
    elapsed_seconds: float,
    results: "dict[str, Any]",
    workers: int = 1,
    directory: "str | os.PathLike[str] | None" = None,
    extra: "dict[str, Any] | None" = None,
    metrics: "dict[str, Any] | None" = None,
) -> pathlib.Path:
    """Write one standardized bench-trajectory record.

    ``results`` carries the bench's headline numbers (tables, medians,
    BER series — anything JSON-serializable); ``elapsed_seconds`` is the
    measured wall-clock of the bench body.  The record is self-describing
    enough for a trajectory scraper: name, schema version, timestamp,
    worker count, and the library/numpy versions the numbers came from.

    ``metrics`` embeds an observability registry snapshot (counters /
    gauges / histograms — see :func:`repro.obs.snapshot`); when ``None``
    the current process's snapshot is used, which is empty unless the
    bench enabled observability.
    """
    from repro import __version__, obs

    if metrics is None:
        metrics = obs.snapshot()
    record: "dict[str, Any]" = {
        "artifact_version": ARTIFACT_VERSION,
        "kind": "bench",
        "name": name,
        "created_unix": time.time(),
        "elapsed_seconds": float(elapsed_seconds),
        "workers": int(workers),
        "results": results,
        "metrics": metrics,
        "environment": {
            "repro_version": __version__,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }
    if extra:
        record["extra"] = extra
    target = bench_json_path(name, directory)
    try:
        encoded = json.dumps(record, sort_keys=True, indent=2).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise StoreError(
            f"bench results for {name!r} are not JSON-serializable: {error}"
        ) from error
    _atomic_write_bytes(target, encoded)
    return target


def read_bench_json(path: "str | os.PathLike[str]") -> "dict[str, Any]":
    """Load and validate one ``BENCH_*.json`` record.

    Reads every version up to :data:`ARTIFACT_VERSION`; v1 records
    (pre-observability) come back with an empty ``metrics`` block, so
    consumers can rely on the key existing.
    """
    try:
        record = json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError) as error:
        raise StoreError(f"cannot read bench artifact {path}: {error}") from error
    if not isinstance(record, dict) or record.get("kind") != "bench":
        raise StoreError(f"{path} is not a bench artifact")
    if record.get("artifact_version", 0) > ARTIFACT_VERSION:
        raise StoreError(
            f"bench artifact {path} is version {record['artifact_version']}, "
            f"newer than this library (v{ARTIFACT_VERSION})"
        )
    record.setdefault("metrics", {})
    return record
