"""Shared utilities: unit conversions, DSP kernels, validation, RNG plumbing."""

from repro.utils.units import (
    db_to_power_ratio,
    db_to_voltage_ratio,
    dbm_to_watts,
    inches_to_meters,
    power_ratio_to_db,
    voltage_ratio_to_db,
    watts_to_dbm,
    wavelength,
)
from repro.utils.rng import SeedSpec, resolve_rng, seed_sequence_of, spawn_streams
from repro.utils.validation import (
    ensure_finite,
    ensure_in_range,
    ensure_positive,
    ensure_probability,
)

__all__ = [
    "db_to_power_ratio",
    "db_to_voltage_ratio",
    "dbm_to_watts",
    "inches_to_meters",
    "power_ratio_to_db",
    "voltage_ratio_to_db",
    "watts_to_dbm",
    "wavelength",
    "SeedSpec",
    "resolve_rng",
    "seed_sequence_of",
    "spawn_streams",
    "ensure_finite",
    "ensure_in_range",
    "ensure_positive",
    "ensure_probability",
]
