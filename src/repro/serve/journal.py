"""Durable job journal: a write-ahead ledger for accepted serve jobs.

The scheduler (PR 7) is careful about many failure modes — disconnects,
backpressure, drain — but a *server crash* silently lost every accepted
job: clients saw a dead socket and the work-in-progress evaporated.  This
module closes that gap.  Every accepted job is recorded in the cache
directory **before** its first point reaches the pool (write-ahead), each
point is marked complete as it is delivered, and the record is removed
once the whole job has streamed out.  ``repro serve --resume`` replays
incomplete records on startup: completed points come back instantly from
the content-addressed store (their results landed before the crash; the
engines' own fingerprints find them), so only genuinely missing points
recompute, and the reassembled stream is bit-identical to an
uninterrupted run.

Records live under ``<cache-root>/journal/<journal_id>.json``, one JSON
object per file, written with the store's fsync'd atomic-write discipline
(:func:`repro.store.cache.atomic_write_bytes`) — a crash can orphan a
record but never corrupt one.  A record stores the *raw submitted job
object*, not derived state: replay re-validates it through
:func:`repro.serve.protocol.parse_job`, and the recomputed per-point
fingerprints must match the ones journaled on admission (a mismatch means
the code drifted across the restart, and the record is dropped loudly
rather than replayed wrong).

Orphans — records whose ``pid`` no longer names a live process — are what
``repro cache stats`` counts and ``repro cache clear`` sweeps, mirroring
the store's ``*.tmp`` orphan handling.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import time
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ServeError

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "JOURNAL_DIRNAME",
    "JournalRecord",
    "JobJournal",
    "journal_stats",
    "sweep_orphaned_journal",
]

JOURNAL_SCHEMA_VERSION = 1

#: Subdirectory of the cache root holding journal records.
JOURNAL_DIRNAME = "journal"


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process on this host (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, just not ours
    except OSError:
        return False
    return True


@dataclass(frozen=True)
class JournalRecord:
    """One accepted job's durable state.

    ``job`` is the raw submitted job object (the replay source of truth);
    ``point_indices`` is the optional submit-time subset (a resuming
    client requesting only its gap); ``fingerprints`` are the per-point
    engine fingerprints computed on admission; ``completed`` holds the
    indices (positions within ``fingerprints``) already delivered.
    """

    journal_id: str
    kind: str
    job: "dict[str, Any]"
    fingerprints: "tuple[str, ...]"
    completed: "tuple[int, ...]" = ()
    point_indices: "tuple[int, ...] | None" = None
    state: str = "running"
    pid: int = 0
    created_unix: float = 0.0

    def remaining(self) -> "tuple[int, ...]":
        """Point indices not yet marked complete."""
        done = set(self.completed)
        return tuple(
            index for index in range(len(self.fingerprints))
            if index not in done
        )

    def encode(self) -> "dict[str, Any]":
        return {
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "journal_id": self.journal_id,
            "kind": self.kind,
            "job": self.job,
            "fingerprints": list(self.fingerprints),
            "completed": sorted(self.completed),
            "point_indices": (
                None if self.point_indices is None else list(self.point_indices)
            ),
            "state": self.state,
            "pid": self.pid,
            "created_unix": self.created_unix,
        }

    @classmethod
    def decode(cls, data: "dict[str, Any]") -> "JournalRecord":
        """Rebuild a record from its on-disk form.

        Unknown schema versions are rejected *loudly* — a journal written
        by a newer server must never be silently misread or dropped.
        """
        if not isinstance(data, dict):
            raise ServeError("journal record must be a JSON object")
        version = data.get("schema_version")
        if version != JOURNAL_SCHEMA_VERSION:
            raise ServeError(
                f"journal record schema_version {version!r} is not supported "
                f"(this build reads version {JOURNAL_SCHEMA_VERSION}); "
                "refusing to guess at its meaning"
            )
        try:
            journal_id = data["journal_id"]
            kind = data["kind"]
            job = data["job"]
            fingerprints = data["fingerprints"]
            completed = data["completed"]
            point_indices = data.get("point_indices")
            state = data["state"]
            pid = data["pid"]
            created_unix = data["created_unix"]
        except KeyError as error:
            raise ServeError(f"journal record missing field {error}") from None
        if not isinstance(job, dict):
            raise ServeError("journal record job must be a JSON object")
        if not isinstance(fingerprints, list) or not all(
            isinstance(item, str) for item in fingerprints
        ):
            raise ServeError("journal record fingerprints must be strings")
        if not isinstance(completed, list) or not all(
            isinstance(item, int) and not isinstance(item, bool)
            for item in completed
        ):
            raise ServeError("journal record completed must be integers")
        if point_indices is not None and (
            not isinstance(point_indices, list)
            or not all(
                isinstance(item, int) and not isinstance(item, bool)
                for item in point_indices
            )
        ):
            raise ServeError("journal record point_indices must be integers")
        if state not in ("running", "done"):
            raise ServeError(f"journal record state {state!r} is not valid")
        return cls(
            journal_id=str(journal_id),
            kind=str(kind),
            job=job,
            fingerprints=tuple(fingerprints),
            completed=tuple(sorted(completed)),
            point_indices=(
                None if point_indices is None else tuple(point_indices)
            ),
            state=str(state),
            pid=int(pid),
            created_unix=float(created_unix),
        )


@dataclass
class JournalStats:
    """What a journal directory holds (feeds ``repro cache stats``)."""

    entries: int = 0
    orphaned: int = 0
    unreadable: int = 0
    orphan_ids: "list[str]" = field(default_factory=list)


class JobJournal:
    """The write-ahead ledger rooted in one cache directory.

    All mutation goes through :func:`repro.store.cache.atomic_write_bytes`
    (fsync'd temp + rename), so a record on disk is always either the
    previous or the next complete state — never torn.  One journal object
    belongs to one server process; ids embed the pid plus a monotonic
    sequence so concurrent servers sharing a cache directory never
    collide.
    """

    def __init__(self, cache_root: "str | os.PathLike[str]") -> None:
        self.root = pathlib.Path(cache_root) / JOURNAL_DIRNAME
        self._sequence = itertools.count(1)

    # -- paths ---------------------------------------------------------------

    def _path(self, journal_id: str) -> pathlib.Path:
        if not journal_id or "/" in journal_id or journal_id.startswith("."):
            raise ServeError(f"invalid journal id {journal_id!r}")
        return self.root / f"{journal_id}.json"

    def _write(self, record: JournalRecord) -> None:
        from repro.store.cache import atomic_write_bytes

        encoded = json.dumps(
            record.encode(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        atomic_write_bytes(self._path(record.journal_id), encoded)

    # -- lifecycle -----------------------------------------------------------

    def record(
        self,
        *,
        kind: str,
        job: "dict[str, Any]",
        fingerprints: "list[str] | tuple[str, ...]",
        point_indices: "tuple[int, ...] | None" = None,
    ) -> JournalRecord:
        """Journal one accepted job (write-ahead: call before scheduling)."""
        record = JournalRecord(
            journal_id=f"{os.getpid():x}-{time.time_ns():x}-"
                       f"{next(self._sequence)}",
            kind=kind,
            job=job,
            fingerprints=tuple(fingerprints),
            point_indices=point_indices,
            state="running",
            pid=os.getpid(),
            created_unix=time.time(),
        )
        self._write(record)
        return record

    def mark_complete(self, journal_id: str, index: int) -> None:
        """Mark one point delivered (read-modify-write, atomic).

        A missing record is tolerated (the job may have been finished by
        a concurrent delivery or swept externally) — completion marking
        must never take a live stream down.
        """
        record = self.get(journal_id)
        if record is None or index in record.completed:
            return
        self._write(
            replace(record, completed=tuple(sorted((*record.completed, index))))
        )

    def finish(self, journal_id: str) -> None:
        """Remove a fully-delivered (or explicitly abandoned) job's record."""
        try:
            self._path(journal_id).unlink()
        except OSError:
            pass

    def adopt(self, record: JournalRecord) -> JournalRecord:
        """Re-own a crashed server's record under the current pid.

        Called on ``--resume`` so a concurrently-running ``cache clear``
        never mistakes an actively-replaying record for an orphan.
        """
        adopted = replace(record, pid=os.getpid())
        self._write(adopted)
        return adopted

    # -- inspection ----------------------------------------------------------

    def get(self, journal_id: str) -> "JournalRecord | None":
        """Load one record; ``None`` when absent or unreadable JSON.

        Schema-version mismatches still raise — see
        :meth:`JournalRecord.decode`.
        """
        try:
            raw = self._path(journal_id).read_bytes()
        except OSError:
            return None
        try:
            data = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        return JournalRecord.decode(data)

    def _paths(self) -> "list[pathlib.Path]":
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))

    def incomplete(self) -> "list[JournalRecord]":
        """Every journaled job not yet finished, oldest first.

        Unreadable files are skipped (atomic writes make them impossible
        to *create*, but a journal directory is user-visible disk);
        unknown schema versions propagate loudly from ``decode``.
        """
        records = []
        for path in self._paths():
            try:
                data = json.loads(path.read_bytes().decode("utf-8"))
            except (OSError, ValueError, UnicodeDecodeError):
                continue
            record = JournalRecord.decode(data)
            if record.state == "running":
                records.append(record)
        records.sort(key=lambda record: (record.created_unix, record.journal_id))
        return records

    def orphans(self) -> "list[JournalRecord]":
        """Incomplete records whose recording server is no longer alive."""
        return [
            record for record in self.incomplete()
            if not _pid_alive(record.pid)
        ]


# -- store integration (lazy-imported by repro.store.cache) ------------------


def journal_stats(cache_root: "str | os.PathLike[str]") -> JournalStats:
    """Scan a cache directory's journal for ``repro cache stats``.

    Never raises: a stats scan over a shared cache directory must not
    fail because one record is unreadable or from a newer build —
    those are counted as ``unreadable`` instead.
    """
    stats = JournalStats()
    root = pathlib.Path(cache_root) / JOURNAL_DIRNAME
    if not root.is_dir():
        return stats
    for path in sorted(root.glob("*.json")):
        try:
            record = JournalRecord.decode(
                json.loads(path.read_bytes().decode("utf-8"))
            )
        except (OSError, ValueError, UnicodeDecodeError, ServeError):
            stats.unreadable += 1
            continue
        stats.entries += 1
        if record.state == "running" and not _pid_alive(record.pid):
            stats.orphaned += 1
            stats.orphan_ids.append(record.journal_id)
    return stats


def sweep_orphaned_journal(cache_root: "str | os.PathLike[str]") -> int:
    """Delete orphaned journal records; returns how many were removed.

    Only records provably abandoned (dead pid) are touched — a live
    server's in-flight ledger survives a concurrent ``cache clear``.
    Unreadable files are left alone (they may belong to a newer build).
    """
    stats = journal_stats(cache_root)
    root = pathlib.Path(cache_root) / JOURNAL_DIRNAME
    removed = 0
    for journal_id in stats.orphan_ids:
        try:
            (root / f"{journal_id}.json").unlink()
            removed += 1
        except OSError:
            pass
    return removed
