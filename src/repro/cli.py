"""Command-line interface: run BiScatter experiments without writing code.

Subcommands
-----------
``demo``
    One integrated two-way exchange (the quickstart) with chosen geometry.
``ber``
    Monte-Carlo downlink BER at a distance or pinned SNR.
``localize``
    Tag localization trials (fixed or varying slopes).
``design``
    Print the CSSK alphabet a given configuration yields (Eqs. 10-14).
``power``
    Print the tag power budget for prototype / projected-IC designs.
``robustness``
    Impairment-severity sweep producing a degradation curve (BER,
    frame-erasure rate, ranging error vs severity).
``cache``
    Manage an experiment store: ``stats``, ``verify`` (bit-exact
    recompute self-check), ``clear``.
``obs``
    Observability utilities: ``export`` finalizes a run's streaming
    Chrome-trace file into strict ``traceEvents`` JSON.

``demo``, ``ber``, and ``soak`` accept ``--impair SPEC`` to inject
signal-chain faults (``name[:severity],…`` — ``interference``, ``drift``,
``clip``, ``loss``, ``impulse``); severity 0 is bit-identical to no
injection, and decode failures under impairment are recorded as frame
erasures rather than aborting the run.

``ber`` and ``localize`` accept ``--cache-dir DIR`` to serve repeat runs
from the content-addressed experiment store (results are bit-identical
either way), plus the executor fault knobs ``--max-retries`` (bounded
bit-identical retry of crashed workers/chunks) and ``--chunk-timeout``
(deadline for stuck chunks, with exponential backoff).

Every run subcommand also takes the observability flags: ``--log-json``
(structured JSON-lines run events on stderr), ``--profile`` (metrics
summary table after the run), and ``--trace-dir DIR`` (per-run Chrome
``trace_event`` file, viewable in ``about:tracing`` / Perfetto).  The
``REPRO_LOG`` / ``REPRO_LOG_FILE`` / ``REPRO_TRACE_DIR`` environment
variables configure the same machinery without touching the command
line.  Telemetry never feeds back into results — numbers are
bit-identical with everything enabled.

Examples::

    python -m repro.cli demo --range 3.2
    python -m repro.cli ber --distance 7 --symbol-bits 5 --frames 100
    python -m repro.cli ber --distance 7 --frames 100 --cache-dir .repro-cache
    python -m repro.cli ber --frames 40 --workers 2 --log-json --profile
    python -m repro.cli design --bandwidth-ghz 1.0 --delta-l-inches 45 --symbol-bits 5
    python -m repro.cli ber --distance 5 --frames 50 --impair drift:0.5,impulse:0.3
    python -m repro.cli robustness --range 3 --frames 8 --severities 0,0.5,1
    python -m repro.cli cache verify --cache-dir .repro-cache
    python -m repro.cli obs export --trace-dir .repro-trace
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys

import numpy as np


def _add_obs_options(parser) -> None:
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON-lines run events on stderr "
        "(equivalent to REPRO_LOG=json)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect run metrics and print a summary table after the command",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="write a per-run Chrome trace_event file under DIR "
        "(equivalent to REPRO_TRACE_DIR; view in about:tracing)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve GET /metrics (Prometheus text exposition), /healthz, "
        "and /status over HTTP for the duration of the run "
        "(0 = any free port; the bound address is announced on stderr)",
    )
    parser.add_argument(
        "--manifest-dir",
        default=None,
        metavar="DIR",
        help="write a durable, schema-versioned manifest_<run>.json "
        "record of this run under DIR (equivalent to "
        "REPRO_MANIFEST_DIR; inspect with `repro obs runs/report/diff`)",
    )


def _add_impair_option(parser) -> None:
    parser.add_argument(
        "--impair",
        default=None,
        metavar="SPEC",
        help="inject signal-chain impairments: name[:severity],... with "
        "names interference, drift, clip, loss, impulse (severity in "
        "[0, 1], default 1; severity 0 is bit-identical to no injection)",
    )


def _add_demo(subparsers) -> None:
    parser = subparsers.add_parser("demo", help="one integrated two-way exchange")
    parser.add_argument("--range", type=float, default=3.0, dest="range_m")
    parser.add_argument("--downlink-bits", type=int, default=40)
    parser.add_argument("--uplink-bits", type=int, default=6)
    parser.add_argument("--seed", type=int, default=7)
    _add_impair_option(parser)
    _add_obs_options(parser)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if not value > 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _nonnegative_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _add_worker_options(parser) -> None:
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="Monte-Carlo worker processes (1 = serial; results are "
        "bit-identical for any worker count)",
    )
    parser.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=None,
        help="trials per dispatched chunk (default: auto, ~4 chunks/worker)",
    )
    parser.add_argument(
        "--max-retries",
        type=_nonnegative_int,
        default=2,
        help="resubmissions of a crashed/failed chunk before the run "
        "aborts with ExecutorError (retries are bit-identical; default 2)",
    )
    parser.add_argument(
        "--chunk-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-chunk deadline; a stuck chunk's worker is killed and the "
        "chunk retried with exponential backoff (default: no timeout)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="experiment-store directory; repeat runs are served from the "
        "cache, bit-identically (default: no caching)",
    )
    parser.add_argument(
        "--batch-frames",
        action="store_true",
        help="synthesize and decode each chunk's frames as stacked arrays "
        "(bit-identical to the per-frame path; engines without a batched "
        "path ignore the flag)",
    )


def _add_adaptive_options(parser) -> None:
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="CI-driven sequential stopping: run frames in index-keyed "
        "rounds until the BER confidence interval is tighter than "
        "--ci-width (relative), capped at --max-frames; frame seeds are "
        "identical to a fixed-budget run's",
    )
    parser.add_argument(
        "--ci-width",
        type=_nonnegative_float,
        default=0.25,
        metavar="REL",
        help="target relative CI width (interval width / BER estimate) "
        "for --adaptive; 0 disables early stopping, making the run "
        "bit-identical to a fixed budget of --max-frames (default 0.25)",
    )
    parser.add_argument(
        "--min-frames",
        type=_positive_int,
        default=10,
        help="frames an --adaptive run must complete before any "
        "CI-based stop (default 10)",
    )
    parser.add_argument(
        "--max-frames",
        type=_positive_int,
        default=None,
        help="hard frame cap for --adaptive (default: --frames)",
    )
    parser.add_argument(
        "--adaptive-batch",
        type=_positive_int,
        default=None,
        metavar="FRAMES",
        help="frames per adaptive round; the stopping rule is evaluated "
        "on round boundaries (default: --min-frames)",
    )


def _add_ber(subparsers) -> None:
    parser = subparsers.add_parser("ber", help="Monte-Carlo downlink BER")
    parser.add_argument("--distance", type=float, default=3.0)
    parser.add_argument("--snr-db", type=float, default=None)
    parser.add_argument("--symbol-bits", type=int, default=5)
    parser.add_argument("--bandwidth-ghz", type=float, default=1.0)
    parser.add_argument("--delta-l-inches", type=float, default=45.0)
    parser.add_argument("--frames", type=int, default=100)
    parser.add_argument("--full-sync", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    _add_impair_option(parser)
    _add_adaptive_options(parser)
    _add_worker_options(parser)
    _add_obs_options(parser)


def _add_localize(subparsers) -> None:
    parser = subparsers.add_parser("localize", help="tag localization trials")
    parser.add_argument("--range", type=float, default=3.0, dest="range_m")
    parser.add_argument("--frames", type=int, default=5)
    parser.add_argument("--varying-slopes", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    _add_worker_options(parser)
    _add_obs_options(parser)


def _add_design(subparsers) -> None:
    parser = subparsers.add_parser("design", help="print a CSSK alphabet design")
    parser.add_argument("--bandwidth-ghz", type=float, default=1.0)
    parser.add_argument("--delta-l-inches", type=float, default=45.0)
    parser.add_argument("--symbol-bits", type=int, default=5)
    parser.add_argument("--period-us", type=float, default=120.0)
    _add_obs_options(parser)


def _add_power(subparsers) -> None:
    parser = subparsers.add_parser("power", help="print the tag power budget")
    parser.add_argument("--downlink-duty", type=float, default=0.1)
    _add_obs_options(parser)


def _add_soak(subparsers) -> None:
    parser = subparsers.add_parser(
        "soak", help="run consecutive ISAC frames and print a session report"
    )
    parser.add_argument("--range", type=float, default=3.0, dest="range_m")
    parser.add_argument("--frames", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    _add_impair_option(parser)
    _add_obs_options(parser)


def _severity_list(text: str) -> "tuple[float, ...]":
    try:
        values = tuple(float(token) for token in text.split(",") if token.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad severity list {text!r}") from None
    if not values:
        raise argparse.ArgumentTypeError("severity list must be non-empty")
    for value in values:
        if not 0.0 <= value <= 1.0:
            raise argparse.ArgumentTypeError(
                f"severities must be in [0, 1], got {value}"
            )
    return values


#: Default fault bundle for `repro robustness` (one of everything).
_DEFAULT_ROBUSTNESS_IMPAIR = "interference:0.6,drift:0.4,clip:0.5,loss:0.4,impulse:0.5"


def _add_robustness(subparsers) -> None:
    parser = subparsers.add_parser(
        "robustness",
        help="impairment-severity sweep -> degradation curve",
    )
    parser.add_argument("--range", type=float, default=3.0, dest="range_m")
    parser.add_argument(
        "--frames", type=_positive_int, default=8,
        help="ISAC frames per severity point (default 8)",
    )
    parser.add_argument(
        "--severities", type=_severity_list, default=(0.0, 0.25, 0.5, 0.75, 1.0),
        help="comma-separated severity ladder in [0, 1] "
        "(default 0,0.25,0.5,0.75,1)",
    )
    parser.add_argument(
        "--impair", default=_DEFAULT_ROBUSTNESS_IMPAIR, metavar="SPEC",
        help="fault bundle to sweep; member severities are relative "
        f"weights scaled by each ladder point (default {_DEFAULT_ROBUSTNESS_IMPAIR})",
    )
    parser.add_argument(
        "--if-threshold", type=_positive_float, default=None, metavar="RATIO",
        help="IF-correction confidence gate: chirps whose range profile "
        "peaks below RATIO x mean fall back to the last confident chirp "
        "(default: off)",
    )
    parser.add_argument("--downlink-bits", type=_positive_int, default=10)
    parser.add_argument("--uplink-bits", type=_positive_int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    _add_adaptive_options(parser)
    _add_worker_options(parser)
    _add_obs_options(parser)


def _add_serve(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="streaming job server over the executor + store "
        "(NDJSON line protocol over TCP)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=_nonnegative_int, default=7531,
        help="TCP port to bind (0 = pick a free port; the bound address "
        "is printed on startup)",
    )
    parser.add_argument(
        "--pool-workers", type=_positive_int, default=2,
        help="concurrent points computed by the shared pool (default 2)",
    )
    parser.add_argument(
        "--max-pending", type=_positive_int, default=256,
        help="queued+running point cap; submits over it are rejected "
        "with a retry-after hint (default 256)",
    )
    parser.add_argument(
        "--retry-after", type=_positive_float, default=1.0,
        metavar="SECONDS",
        help="base resubmission hint attached to backpressure rejections "
        "(scaled by backlog; default 1)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay incomplete journaled jobs from a previous (crashed) "
        "server before accepting connections; already-stored points are "
        "cache hits, only missing points recompute",
    )
    parser.add_argument(
        "--no-journal", action="store_true",
        help="disable the write-ahead job journal (on by default when "
        "--cache-dir is set; --resume needs it)",
    )
    parser.add_argument(
        "--point-retries", type=_nonnegative_int, default=1,
        help="extra compute attempts before a failing/stalling point is "
        "quarantined with a per-point `failed` frame (default 1)",
    )
    parser.add_argument(
        "--point-timeout", type=_positive_float, default=None,
        metavar="SECONDS",
        help="per-attempt point deadline; a stalled worker past it is "
        "abandoned and the thread pool rebuilt (default: none)",
    )
    _add_worker_options(parser)
    _add_obs_options(parser)


def _add_cache(subparsers) -> None:
    parser = subparsers.add_parser("cache", help="manage an experiment store")
    cache_subparsers = parser.add_subparsers(dest="cache_command", required=True)

    stats = cache_subparsers.add_parser("stats", help="entry counts and sizes")
    stats.add_argument(
        "--json", action="store_true",
        help="emit machine-readable store health (same schema as the "
        "serve status endpoint's \"store\" block)",
    )
    verify = cache_subparsers.add_parser(
        "verify",
        help="integrity-check every entry and recompute a sampled subset "
        "bit-exactly (the determinism self-check)",
    )
    verify.add_argument(
        "--sample", type=int, default=8,
        help="how many replayable entries to recompute (default 8)",
    )
    verify.add_argument(
        "--seed", type=int, default=0, help="sampling seed (default 0)"
    )
    clear = cache_subparsers.add_parser("clear", help="delete every entry")
    for sub in (stats, verify, clear):
        sub.add_argument(
            "--cache-dir", default=".repro-cache",
            help="experiment-store directory (default .repro-cache)",
        )
        _add_obs_options(sub)


def _add_obs(subparsers) -> None:
    parser = subparsers.add_parser("obs", help="observability utilities")
    obs_subparsers = parser.add_subparsers(dest="obs_command", required=True)
    export = obs_subparsers.add_parser(
        "export",
        help="finalize a run's streaming trace into strict Chrome-trace "
        "JSON (traceEvents + the run's metrics snapshot)",
    )
    export.add_argument(
        "--trace-dir", default=".repro-trace",
        help="directory holding trace_<run>.json files (default .repro-trace)",
    )
    export.add_argument(
        "--run", default=None,
        help="run id to export (default: the most recent run in --trace-dir)",
    )
    export.add_argument(
        "--out", default=None,
        help="output path (default: export_<run>.json next to the trace)",
    )
    runs = obs_subparsers.add_parser(
        "runs", help="list the run-manifest ledger"
    )
    report = obs_subparsers.add_parser(
        "report",
        help="render one run's manifest as a human report "
        "(throughput, faults, cache traffic, adaptive trajectories, "
        "latency histograms)",
    )
    report.add_argument(
        "--run", default=None,
        help="run id to report (default: the most recent run)",
    )
    diff = obs_subparsers.add_parser(
        "diff",
        help="compare two run manifests: config/version changes, metric "
        "deltas, wall-clock and cache shifts",
    )
    diff.add_argument("run_a", help="baseline run id")
    diff.add_argument("run_b", help="candidate run id")
    for sub in (runs, report, diff):
        sub.add_argument(
            "--manifest-dir", default=".repro-manifests",
            help="ledger directory holding manifest_<run>.json files "
            "(default .repro-manifests)",
        )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro", description="BiScatter reproduction command line"
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_demo(subparsers)
    _add_ber(subparsers)
    _add_localize(subparsers)
    _add_design(subparsers)
    _add_power(subparsers)
    _add_soak(subparsers)
    _add_robustness(subparsers)
    _add_serve(subparsers)
    _add_cache(subparsers)
    _add_obs(subparsers)
    return parser


def _impair_spec(args):
    """The parsed --impair spec, or None when the flag is absent/empty."""
    text = getattr(args, "impair", None)
    if not text:
        return None
    from repro.impair import ImpairmentSpec

    return ImpairmentSpec.parse(text)


def _run_demo(args, out) -> int:
    from repro.core.ber import bit_error_rate, random_bits
    from repro.sim.scenario import default_office_scenario

    scenario = default_office_scenario(tag_range_m=args.range_m)
    spec = _impair_spec(args)
    session = scenario.session(impairments=spec)
    downlink = random_bits(args.downlink_bits, rng=args.seed)
    uplink = random_bits(args.uplink_bits, rng=args.seed + 1)
    result = session.run_frame(downlink, uplink, rng=args.seed + 2)
    print(f"frame: {len(result.frame)} chirps "
          f"({result.frame.duration_s * 1e3:.1f} ms)", file=out)
    if spec is not None:
        print(f"impairments: {spec.describe()}", file=out)
    print(f"downlink BER: {bit_error_rate(downlink, result.downlink_bits_decoded):.3f}",
          file=out)
    if result.uplink is not None:
        print(f"uplink BER: {bit_error_rate(uplink, result.uplink.bits):.3f}", file=out)
    else:
        print("uplink: erased", file=out)
    if result.localization is not None:
        print(f"localized: {result.localization.range_m:.3f} m "
              f"(truth {args.range_m} m)", file=out)
    else:
        print("localization: erased", file=out)
    for erasure in result.erasures:
        print(f"erasure [{erasure.stage}]: {erasure.error}: {erasure.message}",
              file=out)
    return 0


def _execution_plan(args):
    """An ExecutionPlan from the worker/fault flags plus a timing collector."""
    from repro.sim.executor import ExecutionPlan

    timings = []
    plan = ExecutionPlan(
        workers=args.workers,
        chunk_size=args.chunk_size,
        progress=timings.append,
        max_retries=args.max_retries,
        chunk_timeout_s=args.chunk_timeout,
        batch_frames=getattr(args, "batch_frames", False),
    )
    return plan, timings


def _print_execution(timings, args, out) -> None:
    if args.workers <= 1:
        return
    total = sum(t.seconds for t in timings)
    print(
        f"executor: {args.workers} workers, {len(timings)} chunks, "
        f"{total:.2f} s of chunk work",
        file=out,
    )


def _adaptive_from(args):
    """The AdaptiveConfig from the --adaptive flags (None = fixed budget).

    ``--max-frames`` defaults to ``--frames``, so ``--adaptive`` turns
    the existing budget into a cap; ``--adaptive-batch`` defaults to
    ``--min-frames`` (one round reaches the earliest legal stop).
    """
    if not getattr(args, "adaptive", False):
        return None
    from repro.sim.adaptive import AdaptiveConfig

    max_frames = args.max_frames if args.max_frames is not None else args.frames
    batch = args.adaptive_batch if args.adaptive_batch is not None else args.min_frames
    min_frames = min(args.min_frames, max_frames)
    return AdaptiveConfig(
        target_rel_width=args.ci_width,
        min_frames=min_frames,
        max_frames=max_frames,
        batch_frames=batch,
    )


def _print_adaptive(trajectory, out) -> None:
    """One summary line for an adaptive run's stopping trajectory."""
    if trajectory is None:
        return
    rel = trajectory.get("rel_width")
    rel_text = f"{rel:.3f}" if rel is not None else "-"
    print(
        f"adaptive: {trajectory['frames']} frame(s) in "
        f"{trajectory['rounds']} round(s), stop={trajectory['reason']}, "
        f"CI [{trajectory['ci_low']:.3e}, {trajectory['ci_high']:.3e}], "
        f"rel width {rel_text}",
        file=out,
    )


def _store_from(args):
    """The ExperimentStore named by --cache-dir (None = caching off)."""
    if getattr(args, "cache_dir", None) is None:
        return None
    from repro.store import ExperimentStore

    return ExperimentStore(args.cache_dir)


def _print_store(store, out) -> None:
    if store is None:
        return
    print(
        f"cache: {store.session_hits} hit(s), {store.session_misses} miss(es) "
        f"({store.root})",
        file=out,
    )


def _run_ber(args, out) -> int:
    from repro.core.cssk import CsskAlphabet, DecoderDesign
    from repro.radar.config import XBAND_9GHZ
    from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials

    alphabet = CsskAlphabet.design(
        bandwidth_hz=args.bandwidth_ghz * 1e9,
        decoder=DecoderDesign.from_inches(args.delta_l_inches),
        symbol_bits=args.symbol_bits,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )
    config = DownlinkTrialConfig(
        radar_config=XBAND_9GHZ.with_bandwidth(args.bandwidth_ghz * 1e9),
        alphabet=alphabet,
        distance_m=args.distance,
        snr_override_db=args.snr_db,
        num_frames=args.frames,
        payload_symbols_per_frame=16,
        full_sync=args.full_sync,
        impairments=_impair_spec(args),
    )
    plan, timings = _execution_plan(args)
    store = _store_from(args)
    adaptive = _adaptive_from(args)
    point = run_downlink_trials(
        config, rng=args.seed, execution=plan, store=store, adaptive=adaptive
    )
    if config.impairments is not None:
        print(f"impairments: {config.impairments.describe()}", file=out)
    print(f"BER: {point.ber:.3e} ({point.bit_errors}/{point.bits_total} bits)", file=out)
    print(f"video SNR at {args.distance} m: {point.extra['video_snr_db']:.1f} dB", file=out)
    # After the BER/SNR lines, so fixed-vs-adaptive diffs of the first
    # two lines (the CI degenerate smoke) stay clean.
    _print_adaptive(point.extra.get("adaptive"), out)
    _print_execution(timings, args, out)
    _print_store(store, out)
    return 0


def _run_localize(args, out) -> int:
    from repro.radar.config import XBAND_9GHZ
    from repro.sim.engine import run_localization_trials
    from repro.sim.scenario import default_office_scenario

    scenario = default_office_scenario(tag_range_m=args.range_m)
    plan, timings = _execution_plan(args)
    store = _store_from(args)
    errors = run_localization_trials(
        XBAND_9GHZ,
        scenario.alphabet,
        scenario.tag.modulator,
        scenario.tag.van_atta,
        tag_range_m=args.range_m,
        varying_slopes=args.varying_slopes,
        num_frames=args.frames,
        clutter=scenario.clutter,
        rng=args.seed,
        execution=plan,
        store=store,
    )
    mode = "varying slopes (communicating)" if args.varying_slopes else "fixed slope"
    print(f"mode: {mode}", file=out)
    print(f"median error: {np.median(errors) * 100:.2f} cm", file=out)
    print(f"max error:    {np.max(errors) * 100:.2f} cm", file=out)
    _print_execution(timings, args, out)
    _print_store(store, out)
    return 0


def _run_design(args, out) -> int:
    from repro.core.cssk import CsskAlphabet, DecoderDesign
    from repro.errors import AlphabetError

    try:
        alphabet = CsskAlphabet.design(
            bandwidth_hz=args.bandwidth_ghz * 1e9,
            decoder=DecoderDesign.from_inches(args.delta_l_inches),
            symbol_bits=args.symbol_bits,
            chirp_period_s=args.period_us * 1e-6,
            min_chirp_duration_s=20e-6,
        )
    except AlphabetError as error:
        print(f"infeasible: {error}", file=out)
        return 1
    print(f"slopes: {alphabet.num_slopes} "
          f"({alphabet.num_data_symbols} data + header + sync)", file=out)
    print(f"beat range: {alphabet.header_beat_hz / 1e3:.1f} - "
          f"{alphabet.sync_beat_hz / 1e3:.1f} kHz "
          f"(spacing {alphabet.beat_spacing_hz / 1e3:.2f} kHz)", file=out)
    print(f"chirp durations: {alphabet.sync_duration_s * 1e6:.1f} - "
          f"{alphabet.header_duration_s * 1e6:.1f} us", file=out)
    print(f"downlink rate: {alphabet.data_rate_bps() / 1e3:.1f} kbps", file=out)
    return 0


def _run_power(args, out) -> int:
    from repro.tag.power import TagPowerModel

    for label, model in (
        ("COTS prototype", TagPowerModel.prototype()),
        ("projected IC", TagPowerModel.projected_ic()),
    ):
        print(f"{label}:", file=out)
        print(f"  continuous:        {model.continuous_power_w() * 1e3:.2f} mW", file=out)
        print(f"  uplink-only:       {model.uplink_only_power_w() * 1e6:.2f} uW", file=out)
        print(
            f"  sequential ({args.downlink_duty:.0%} DL): "
            f"{model.sequential_power_w(args.downlink_duty) * 1e3:.3f} mW",
            file=out,
        )
    return 0


def _run_soak(args, out) -> int:
    from repro.core.ber import random_bits
    from repro.sim.report import build_report
    from repro.sim.scenario import default_office_scenario

    scenario = default_office_scenario(tag_range_m=args.range_m)
    spec = _impair_spec(args)
    if spec is not None:
        print(f"impairments: {spec.describe()}", file=out)
    session = scenario.session(impairments=spec)
    results = [
        session.run_frame(
            random_bits(10, rng=args.seed + k),
            random_bits(4, rng=args.seed + 100 + k),
            rng=args.seed + 200 + k,
        )
        for k in range(args.frames)
    ]
    report = build_report(results, true_range_m=args.range_m)
    print(report.to_markdown(title=f"soak @ {args.range_m} m"), file=out)
    return 0 if report.healthy() else 1


def _run_robustness(args, out) -> int:
    from repro.sim.robustness import RobustnessConfig, run_robustness_sweep
    from repro.sim.scenario import default_office_scenario

    spec = _impair_spec(args)
    config = RobustnessConfig(
        scenario=default_office_scenario(tag_range_m=args.range_m),
        impairments=spec,
        severities=tuple(args.severities),
        num_frames=args.frames,
        downlink_bits=args.downlink_bits,
        uplink_bits=args.uplink_bits,
        if_confidence_threshold=args.if_threshold,
    )
    plan, timings = _execution_plan(args)
    store = _store_from(args)
    adaptive = _adaptive_from(args)
    point_frames: "list[int]" = []

    def collect_adaptive(index, severity, metrics):
        trajectory = metrics.get("adaptive")
        if trajectory:
            point_frames.append(int(trajectory["frames"]))

    curve = run_robustness_sweep(
        config,
        rng=args.seed,
        execution=plan,
        store=store,
        on_point=collect_adaptive if adaptive is not None else None,
        adaptive=adaptive,
    )
    print(f"impairments: {spec.describe()}", file=out)
    if adaptive is not None:
        print(
            f"frames per point: adaptive (ci-width {args.ci_width:g}, "
            f"cap {adaptive.max_frames})",
            file=out,
        )
    else:
        print(f"frames per point: {args.frames}", file=out)
    print(curve.to_markdown(), file=out)
    if point_frames:
        print(
            f"adaptive: {sum(point_frames)} frame(s) total "
            f"({', '.join(str(n) for n in point_frames)} per point)",
            file=out,
        )
    _print_execution(timings, args, out)
    _print_store(store, out)
    return 0


def _run_serve(args, out) -> int:
    from repro.serve.server import ServeConfig, run_server
    from repro.sim.executor import ExecutionPlan

    # A long-lived server must not accumulate per-chunk timing records,
    # so this builds the plan directly instead of via _execution_plan.
    plan = ExecutionPlan(
        workers=args.workers,
        chunk_size=args.chunk_size,
        max_retries=args.max_retries,
        chunk_timeout_s=args.chunk_timeout,
        batch_frames=getattr(args, "batch_frames", False),
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        pool_workers=args.pool_workers,
        max_pending=args.max_pending,
        retry_after_s=args.retry_after,
        cache_dir=args.cache_dir,
        execution=plan,
        metrics_port=getattr(args, "metrics_port", None),
        journal=not args.no_journal,
        resume=args.resume,
        point_retries=args.point_retries,
        point_timeout_s=args.point_timeout,
    )
    if args.resume and (args.no_journal or args.cache_dir is None):
        print(
            "error: --resume requires the journal (a --cache-dir and "
            "no --no-journal)",
            file=out,
        )
        return 2
    return run_server(config, out=out)


def _run_cache(args, out) -> int:
    from repro.store import ExperimentStore

    store = ExperimentStore(args.cache_dir)
    if args.cache_command == "stats":
        if args.json:
            print(
                json.dumps(store.stats_payload(), indent=2, sort_keys=True),
                file=out,
            )
            return 0
        stats = store.stats()
        print(f"store: {stats.root}", file=out)
        print(f"entries: {stats.entries} ({stats.corrupt} corrupt)", file=out)
        print(f"array files: {stats.array_files}", file=out)
        print(f"orphaned temp files: {stats.tmp_files}", file=out)
        print(
            f"journal: {stats.journal_entries} record(s) "
            f"({stats.journal_orphans} orphaned)",
            file=out,
        )
        print(f"size: {stats.total_bytes / 1024:.1f} KiB", file=out)
        print(
            f"session: {store.session_hits} hit(s), "
            f"{store.session_misses} miss(es)",
            file=out,
        )
        for kind, count in sorted(stats.kinds.items()):
            print(f"  {kind}: {count}", file=out)
        return 0
    if args.cache_command == "verify":
        report = store.verify(sample=args.sample, rng=args.seed)
        print(f"store: {store.root}", file=out)
        print(f"entries checked: {report.integrity_checked}/{report.total}", file=out)
        print(f"corrupt: {len(report.corrupt)}", file=out)
        print(
            f"recomputed bit-exactly: {report.recomputed - len(report.mismatched)}"
            f"/{report.recomputed}",
            file=out,
        )
        if report.unreplayable:
            print(f"not replayable (no recipe): {report.unreplayable}", file=out)
        for fingerprint in report.corrupt:
            print(f"  corrupt: {fingerprint}", file=out)
        for fingerprint in report.mismatched:
            print(f"  MISMATCH: {fingerprint}", file=out)
        print("verdict: " + ("ok" if report.ok() else "FAILED"), file=out)
        return 0 if report.ok() else 1
    if args.cache_command == "clear":
        pre = store.stats()
        removed = store.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {store.root}", file=out)
        if pre.tmp_files:
            print(f"removed {pre.tmp_files} orphaned temp file(s)", file=out)
        if pre.journal_orphans:
            print(
                f"removed {pre.journal_orphans} orphaned journal record(s)",
                file=out,
            )
        return 0
    raise ValueError(f"unknown cache command {args.cache_command!r}")


def _unknown_run(kind: str, run_id: str, available: "list[str]", out) -> int:
    """Report an unknown run id (exit 2), listing what exists instead."""
    print(f"error: no {kind} for run {run_id!r}", file=out)
    if available:
        print("available runs (oldest first):", file=out)
        for known in available:
            print(f"  {known}", file=out)
    else:
        print("no runs recorded yet", file=out)
    return 2


def _run_obs(args, out) -> int:
    from repro import obs

    if args.obs_command == "export":
        if args.run is not None and args.run not in obs.list_runs(args.trace_dir):
            return _unknown_run(
                "trace", args.run, obs.list_runs(args.trace_dir), out
            )
        try:
            target = obs.export_run(args.trace_dir, run_id=args.run, out=args.out)
        except FileNotFoundError as error:
            print(f"error: {error}", file=out)
            return 1
        print(f"exported: {target}", file=out)
        return 0

    from repro.obs import manifest as obs_manifest
    from repro.obs import report as obs_report

    ledger = args.manifest_dir
    known = obs_manifest.list_runs(ledger)
    if args.obs_command == "runs":
        manifests = [obs_manifest.load(ledger, run_id) for run_id in known]
        print(obs_report.render_runs_table(manifests), file=out)
        return 0
    if args.obs_command == "report":
        run_id = args.run if args.run is not None else (known[-1] if known else None)
        if run_id is None or run_id not in known:
            return _unknown_run("manifest", str(run_id), known, out)
        print(obs_report.render_run_report(obs_manifest.load(ledger, run_id)), file=out)
        return 0
    if args.obs_command == "diff":
        for run_id in (args.run_a, args.run_b):
            if run_id not in known:
                return _unknown_run("manifest", run_id, known, out)
        print(
            obs_report.render_diff(
                obs_manifest.load(ledger, args.run_a),
                obs_manifest.load(ledger, args.run_b),
            ),
            file=out,
        )
        return 0
    raise ValueError(f"unknown obs command {args.obs_command!r}")


class _Telemetry:
    """What one CLI invocation stood up: exporter thread + run recorder."""

    __slots__ = ("exporter", "recorder")

    def __init__(self) -> None:
        self.exporter = None
        self.recorder = None


#: Config-fingerprint exclusions: telemetry and execution knobs change
#: *how* a run is observed or scheduled, never its results — two runs
#: that differ only here should diff as "config unchanged".
_NON_CONFIG_ARGS = frozenset({
    "command", "log_json", "profile", "trace_dir", "metrics_port",
    "manifest_dir", "workers", "chunk_size", "max_retries",
    "chunk_timeout", "batch_frames", "cache_dir",
})


def _config_fingerprint(args) -> str:
    from repro.store.fingerprint import fingerprint

    config = {
        name: value for name, value in sorted(vars(args).items())
        if name not in _NON_CONFIG_ARGS
    }
    return fingerprint(f"cli-config:{args.command}", config)


def _setup_obs(args, argv: "list[str] | None" = None) -> _Telemetry:
    """Enable observability when the command's flags ask for it.

    ``--profile`` alone turns the registry on (metrics need the enabled
    switch) without changing the logging destination; environment-driven
    configuration (``REPRO_LOG`` etc.) was already applied at import.
    ``--metrics-port`` additionally starts the HTTP exporter thread
    (except under ``serve``, which owns its exporter so ``/status`` can
    include scheduler state), and ``--manifest-dir`` /
    ``REPRO_MANIFEST_DIR`` opens a run-manifest record.  Returns the
    telemetry context for :func:`_finish_obs` to close out.
    """
    telemetry = _Telemetry()
    log_json = getattr(args, "log_json", False)
    profile = getattr(args, "profile", False)
    trace_dir = getattr(args, "trace_dir", None)
    metrics_port = getattr(args, "metrics_port", None)
    manifest_dir = getattr(args, "manifest_dir", None)
    if args.command in ("obs", "cache"):
        return telemetry
    if manifest_dir is None:
        from repro.obs.manifest import MANIFEST_DIR_ENV

        manifest_dir = os.environ.get(MANIFEST_DIR_ENV) or None
    wants_obs = (
        log_json or profile or trace_dir
        or metrics_port is not None or manifest_dir
    )
    if not wants_obs:
        return telemetry
    from repro import obs

    obs.configure(
        log_format="json" if log_json else None,
        trace_dir=trace_dir,
    )
    if manifest_dir:
        from repro.obs import manifest as obs_manifest

        telemetry.recorder = obs_manifest.begin(
            manifest_dir,
            argv=list(argv) if argv is not None else None,
            command=args.command,
            config_fingerprint=_config_fingerprint(args),
        )
    if metrics_port is not None and args.command != "serve":
        from repro.obs.exporter import MetricsExporter

        telemetry.exporter = MetricsExporter(port=metrics_port)
        host, port = telemetry.exporter.start()
        # Announced on stderr so stdout stays bit-comparable between
        # telemetry-on and telemetry-off runs.
        print(f"metrics on {host}:{port}", file=sys.stderr, flush=True)
    return telemetry


def _finish_obs(args, out, telemetry: "_Telemetry | None" = None,
                code: int = 0) -> None:
    """Post-command close-out: manifest finalize, exporter stop, profile."""
    if telemetry is not None:
        if telemetry.recorder is not None:
            from repro.obs import manifest as obs_manifest

            if obs_manifest.active() is telemetry.recorder:
                obs_manifest.finalize(code)
            else:
                telemetry.recorder.finalize(code)
        if telemetry.exporter is not None:
            telemetry.exporter.stop()
    if args.command == "obs":
        return
    from repro import obs

    if not obs.enabled():
        return
    if obs.tracing_enabled():
        # Persist the merged registry next to the trace so `obs export`
        # can attach it later.
        obs.write_metrics_snapshot()
    if not getattr(args, "profile", False):
        return
    from repro.sim.results import format_table

    data = obs.snapshot()
    rows = []
    for name, value in data["counters"].items():
        rows.append([name, "counter", f"{value:g}"])
    for name, value in data["gauges"].items():
        rows.append([name, "gauge", f"{value:g}"])
    for name, histogram in data["histograms"].items():
        count = histogram["count"]
        mean = histogram["sum"] / count if count else 0.0
        maximum = histogram["max"] if histogram["max"] is not None else 0.0
        rows.append(
            [name, "histogram", f"n={count} mean={mean:.4g}s max={maximum:.4g}s"]
        )
    if not rows:
        rows.append(["(no metrics recorded)", "", ""])
    print(f"profile [{obs.run_id()}]:", file=out)
    print(format_table(["metric", "type", "value"], rows), file=out)


_HANDLERS = {
    "demo": _run_demo,
    "ber": _run_ber,
    "localize": _run_localize,
    "design": _run_design,
    "power": _run_power,
    "soak": _run_soak,
    "robustness": _run_robustness,
    "serve": _run_serve,
    "cache": _run_cache,
    "obs": _run_obs,
}


def main(argv: "list[str] | None" = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = sys.stdout if out is None else out
    args = build_parser().parse_args(argv)
    telemetry = _setup_obs(args, argv if argv is not None else sys.argv[1:])
    from repro.errors import ImpairmentError

    try:
        code = _HANDLERS[args.command](args, out)
    except ImpairmentError as error:
        print(f"error: {error}", file=out)
        code = 2
    except BrokenPipeError:
        # The reader went away (`repro obs report | head`).  Point stdout
        # at devnull so interpreter teardown doesn't raise again, skip
        # telemetry finalization prints, and exit with SIGPIPE's code.
        if out is sys.stdout:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        _finish_obs(args, io.StringIO(), telemetry, 141)
        return 141
    _finish_obs(args, out, telemetry, code)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
