"""Command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.range_m == 3.0
        assert args.command == "demo"

    def test_fault_knob_defaults(self):
        args = build_parser().parse_args(["ber"])
        assert args.max_retries == 2
        assert args.chunk_timeout is None

    def test_fault_knobs_parse(self):
        args = build_parser().parse_args(
            ["ber", "--max-retries", "5", "--chunk-timeout", "30"]
        )
        assert args.max_retries == 5
        assert args.chunk_timeout == 30.0

    def test_fault_knobs_reject_bad_values(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ber", "--max-retries", "-1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ber", "--chunk-timeout", "0"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 7531
        assert args.pool_workers == 2
        assert args.max_pending == 256
        assert args.retry_after == 1.0

    def test_serve_rejects_bad_values(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--port", "-1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--pool-workers", "0"])


class TestDesignCommand:
    def test_prints_alphabet(self):
        code, text = run_cli(
            ["design", "--bandwidth-ghz", "1.0", "--delta-l-inches", "45",
             "--symbol-bits", "5"]
        )
        assert code == 0
        assert "slopes: 34" in text
        assert "41.7 kbps" in text

    def test_infeasible_design_exits_nonzero(self):
        code, text = run_cli(
            ["design", "--symbol-bits", "5", "--period-us", "25"]
        )
        assert code == 1
        assert "infeasible" in text


class TestPowerCommand:
    def test_prints_both_designs(self):
        code, text = run_cli(["power"])
        assert code == 0
        assert "COTS prototype" in text
        assert "projected IC" in text
        assert "48.00 mW" in text


class TestBerCommand:
    def test_runs_small_monte_carlo(self):
        code, text = run_cli(
            ["ber", "--distance", "2", "--frames", "3", "--seed", "1"]
        )
        assert code == 0
        assert "BER:" in text
        assert "video SNR" in text

    def test_snr_override(self):
        code, text = run_cli(
            ["ber", "--snr-db", "20", "--frames", "3"]
        )
        assert code == 0
        assert "BER:" in text

    def test_fault_knobs_run_end_to_end(self):
        code, text = run_cli(
            ["ber", "--distance", "2", "--frames", "3", "--seed", "1",
             "--workers", "2", "--max-retries", "3", "--chunk-timeout", "120"]
        )
        assert code == 0
        assert "BER:" in text


class TestLocalizeCommand:
    def test_fixed_slopes(self):
        code, text = run_cli(
            ["localize", "--range", "2.5", "--frames", "2", "--seed", "3"]
        )
        assert code == 0
        assert "fixed slope" in text
        assert "median error" in text

    def test_varying_slopes(self):
        code, text = run_cli(
            ["localize", "--range", "2.5", "--frames", "2", "--varying-slopes"]
        )
        assert code == 0
        assert "communicating" in text


class TestDemoCommand:
    def test_full_exchange(self):
        code, text = run_cli(["demo", "--range", "2.0", "--seed", "4"])
        assert code == 0
        assert "downlink BER: 0.000" in text
        assert "uplink BER: 0.000" in text
        assert "localized" in text


class TestSoakCommand:
    def test_healthy_soak_exits_zero(self):
        code, text = run_cli(["soak", "--frames", "2", "--range", "2.5", "--seed", "3"])
        assert code == 0
        assert "healthy (default targets): yes" in text
        assert "frames: 2" in text


class TestImpairFlag:
    def test_demo_with_impairment_reports_spec(self):
        code, text = run_cli(
            ["demo", "--range", "2.0", "--seed", "4", "--impair", "impulse:0.2"]
        )
        assert code == 0
        assert "impairments: impulse:0.2" in text

    def test_demo_severity_zero_matches_clean_output(self):
        base = ["demo", "--range", "2.0", "--seed", "4"]
        _, clean = run_cli(base)
        _, impaired = run_cli(base + ["--impair", "loss:0,impulse:0"])
        # Identical numbers modulo the extra "impairments:" line.
        stripped = [
            line for line in impaired.splitlines()
            if not line.startswith("impairments:")
        ]
        assert stripped == clean.splitlines()

    def test_demo_total_loss_reports_erasures_exit_zero(self):
        code, text = run_cli(
            ["demo", "--range", "2.0", "--seed", "4",
             "--impair", "loss:1,drift:0.5"]
        )
        assert code == 0  # graceful degradation: erasures, not a crash
        assert "erased" in text or "erasure" in text

    def test_bad_spec_exits_two(self):
        code, text = run_cli(["demo", "--impair", "jammer"])
        assert code == 2
        assert "unknown impairment" in text

    def test_ber_with_impairment(self):
        code, text = run_cli(
            ["ber", "--snr-db", "15", "--frames", "2",
             "--impair", "impulse:0.3"]
        )
        assert code == 0
        assert "impairments: impulse:0.3" in text
        assert "BER:" in text

    def test_soak_with_impairment_reports_erasures(self):
        code, text = run_cli(
            ["soak", "--frames", "2", "--range", "2.5",
             "--impair", "loss:1"]
        )
        assert "impairments: loss:1" in text
        assert "erased frames: 2/2" in text


class TestRobustnessCommand:
    def test_prints_degradation_table(self):
        code, text = run_cli(
            ["robustness", "--range", "2.5", "--frames", "2",
             "--severities", "0,1", "--seed", "0"]
        )
        assert code == 0
        assert "severity" in text and "erasures" in text
        assert "0.00" in text and "1.00" in text

    def test_workers_bit_identical(self):
        base = ["robustness", "--range", "2.5", "--frames", "2",
                "--severities", "0.5", "--seed", "0"]
        code, serial = run_cli(base)
        assert code == 0
        code, pooled = run_cli(base + ["--workers", "2"])
        assert code == 0
        # Same table; the pooled run adds an executor summary line.
        table = [l for l in serial.splitlines() if l]
        assert all(line in pooled for line in table)

    def test_cache_dir_serves_warm_run(self, tmp_path):
        base = ["robustness", "--range", "2.5", "--frames", "2",
                "--severities", "0,0.5", "--seed", "0",
                "--cache-dir", str(tmp_path / "c")]
        code, cold = run_cli(base)
        assert code == 0
        assert "2 miss(es)" in cold
        code, warm = run_cli(base)
        assert code == 0
        assert "2 hit(s)" in warm

    def test_bad_severities_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["robustness", "--severities", "0,2"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["robustness", "--severities", ""])


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestCacheCommand:
    def test_stats_on_empty_store(self, tmp_path):
        code, text = run_cli(["cache", "stats", "--cache-dir", str(tmp_path / "c")])
        assert code == 0
        assert "entries: 0 (0 corrupt)" in text
        assert "session: 0 hit(s), 0 miss(es)" in text

    def test_ber_populates_cache_and_reports_hits(self, tmp_path):
        cache = str(tmp_path / "c")
        base = ["ber", "--distance", "2", "--frames", "2", "--seed", "1",
                "--cache-dir", cache]
        code, cold = run_cli(base)
        assert code == 0
        assert "1 miss(es)" in cold

        code, warm = run_cli(base)
        assert code == 0
        assert "1 hit(s)" in warm
        # The cached answer is the uncached answer, bit for bit.
        assert cold.splitlines()[0] == warm.splitlines()[0]

        code, stats = run_cli(["cache", "stats", "--cache-dir", cache])
        assert code == 0
        assert "entries: 1 (0 corrupt)" in stats
        assert "downlink-trials: 1" in stats

    def test_localize_populates_cache(self, tmp_path):
        cache = str(tmp_path / "c")
        base = ["localize", "--range", "2.5", "--frames", "2", "--seed", "3",
                "--cache-dir", cache]
        code, cold = run_cli(base)
        assert code == 0
        code, warm = run_cli(base)
        assert code == 0
        assert "1 hit(s)" in warm
        assert cold.splitlines()[0] == warm.splitlines()[0]

    def test_verify_recomputes_ok(self, tmp_path):
        cache = str(tmp_path / "c")
        run_cli(["ber", "--distance", "2", "--frames", "2", "--seed", "1",
                 "--cache-dir", cache])
        code, text = run_cli(["cache", "verify", "--cache-dir", cache])
        assert code == 0
        assert "verdict: ok" in text
        assert "recomputed bit-exactly: 1/1" in text

    def test_verify_flags_forged_entry(self, tmp_path):
        import json as json_module

        cache = tmp_path / "c"
        run_cli(["ber", "--distance", "2", "--frames", "2", "--seed", "1",
                 "--cache-dir", str(cache)])
        [record_path] = [
            p for p in cache.rglob("*.json") if p.name != "index.json"
        ]
        record = json_module.loads(record_path.read_text())
        record["payload"]["ber"] = 0.5
        from repro.store.cache import _payload_checksum

        record["checksum"] = _payload_checksum(record["payload"])
        record_path.write_text(json_module.dumps(record))

        code, text = run_cli(["cache", "verify", "--cache-dir", str(cache)])
        assert code == 1
        assert "verdict: FAILED" in text
        assert "MISMATCH" in text

    def test_clear_empties_store(self, tmp_path):
        cache = str(tmp_path / "c")
        run_cli(["ber", "--distance", "2", "--frames", "2", "--seed", "1",
                 "--cache-dir", cache])
        code, text = run_cli(["cache", "clear", "--cache-dir", cache])
        assert code == 0
        assert "removed 1 entry" in text
        code, text = run_cli(["cache", "stats", "--cache-dir", cache])
        assert "entries: 0" in text

    def test_stats_reports_orphaned_tmp_files(self, tmp_path):
        cache = tmp_path / "c"
        run_cli(["ber", "--distance", "2", "--frames", "2", "--seed", "1",
                 "--cache-dir", str(cache)])
        (cache / "index.json.dead00.tmp").write_bytes(b"partial")
        code, text = run_cli(["cache", "stats", "--cache-dir", str(cache)])
        assert code == 0
        assert "orphaned temp files: 1" in text

    def test_clear_removes_orphaned_tmp_files(self, tmp_path):
        cache = tmp_path / "c"
        run_cli(["ber", "--distance", "2", "--frames", "2", "--seed", "1",
                 "--cache-dir", str(cache)])
        orphan = cache / "index.json.dead00.tmp"
        orphan.write_bytes(b"partial")
        code, text = run_cli(["cache", "clear", "--cache-dir", str(cache)])
        assert code == 0
        assert "removed 1 orphaned temp file(s)" in text
        assert not orphan.exists()

    @staticmethod
    def _journal_record(cache, journal_id, pid):
        """Drop a minimal valid journal record file into the cache dir."""
        import json as json_module

        from repro.serve.journal import JOURNAL_SCHEMA_VERSION

        root = cache / "journal"
        root.mkdir(parents=True, exist_ok=True)
        (root / f"{journal_id}.json").write_text(json_module.dumps({
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "journal_id": journal_id,
            "kind": "ber",
            "job": {"kind": "ber", "frames": 2},
            "fingerprints": ["f" * 64],
            "completed": [],
            "point_indices": None,
            "state": "running",
            "pid": pid,
            "created_unix": 1.0,
        }))

    def test_stats_counts_orphaned_journal_records(self, tmp_path):
        import os

        cache = tmp_path / "c"
        # One record owned by a provably dead pid, one by this process.
        self._journal_record(cache, "dead-1", 2 ** 22 + 12345)
        self._journal_record(cache, "alive-1", os.getpid())
        code, text = run_cli(["cache", "stats", "--cache-dir", str(cache)])
        assert code == 0
        assert "journal: 2 record(s) (1 orphaned)" in text

    def test_clear_sweeps_only_orphaned_journal_records(self, tmp_path):
        import os

        cache = tmp_path / "c"
        self._journal_record(cache, "dead-1", 2 ** 22 + 12345)
        self._journal_record(cache, "alive-1", os.getpid())
        code, text = run_cli(["cache", "clear", "--cache-dir", str(cache)])
        assert code == 0
        assert "removed 1 orphaned journal record(s)" in text
        # A live server's ledger survives; the dead one is gone.
        assert not (cache / "journal" / "dead-1.json").exists()
        assert (cache / "journal" / "alive-1.json").exists()


class TestCacheStatsJson:
    #: The machine-readable schema is an interface: the serve status
    #: endpoint embeds the same document, so drift here breaks scrapers.
    SCHEMA_KEYS = {
        "array_files", "corrupt", "entries", "journal_entries",
        "journal_orphans", "kinds", "root", "session", "tmp_files",
        "total_bytes",
    }

    def test_json_schema_on_empty_store(self, tmp_path):
        import json as json_module

        code, text = run_cli(
            ["cache", "stats", "--json", "--cache-dir", str(tmp_path / "c")]
        )
        assert code == 0
        payload = json_module.loads(text)
        assert set(payload) == self.SCHEMA_KEYS
        assert payload["entries"] == 0
        assert payload["kinds"] == {}
        assert payload["session"] == {"hits": 0, "misses": 0}

    def test_json_counts_match_plain_stats(self, tmp_path):
        import json as json_module

        cache = str(tmp_path / "c")
        run_cli(["ber", "--distance", "2", "--frames", "2", "--seed", "1",
                 "--cache-dir", cache])
        code, text = run_cli(["cache", "stats", "--json", "--cache-dir", cache])
        assert code == 0
        payload = json_module.loads(text)
        assert payload["entries"] == 1
        assert payload["kinds"] == {"downlink-trials": 1}
        assert payload["corrupt"] == 0
        assert payload["total_bytes"] > 0
        # And the plain renderer agrees with the JSON document.
        _, plain = run_cli(["cache", "stats", "--cache-dir", cache])
        assert f"entries: {payload['entries']}" in plain


class TestObservabilityFlags:
    def test_profile_prints_metrics_table(self):
        code, text = run_cli(
            ["ber", "--distance", "2", "--frames", "3", "--seed", "1", "--profile"]
        )
        assert code == 0
        assert "BER:" in text  # the command's own output is untouched
        assert "profile [" in text
        assert "executor.trials.completed" in text
        assert "engine.downlink.trials" in text

    def test_log_json_emits_json_lines(self, capsys):
        import json

        code, _ = run_cli(
            ["ber", "--distance", "2", "--frames", "3", "--seed", "1", "--log-json"]
        )
        assert code == 0
        lines = [
            line for line in capsys.readouterr().err.splitlines() if line.strip()
        ]
        assert lines, "expected JSON-lines events on stderr"
        events = [json.loads(line) for line in lines]
        assert {"run", "ts", "event"} <= set(events[0])
        names = {event["event"] for event in events}
        assert "executor.map.start" in names
        assert "executor.map.done" in names
        # One run id across the whole command.
        assert len({event["run"] for event in events}) == 1

    def test_trace_dir_writes_chrome_trace(self, tmp_path):
        from repro.obs import read_trace_events

        trace_dir = tmp_path / "traces"
        code, _ = run_cli(
            ["localize", "--frames", "2", "--seed", "3",
             "--trace-dir", str(trace_dir)]
        )
        assert code == 0
        [trace_file] = sorted(trace_dir.glob("trace_*.json"))
        events = read_trace_events(trace_file)
        names = {event["name"] for event in events}
        assert "engine.localization" in names
        assert "pool.chunk" in names
        # The metrics snapshot lands next to the trace for `obs export`.
        assert sorted(trace_dir.glob("metrics_*.json"))

    def test_obs_export_finalizes_run(self, tmp_path):
        import json

        trace_dir = tmp_path / "traces"
        run_cli(["ber", "--distance", "2", "--frames", "2", "--seed", "1",
                 "--trace-dir", str(trace_dir)])
        code, text = run_cli(["obs", "export", "--trace-dir", str(trace_dir)])
        assert code == 0
        assert "exported:" in text
        [export_file] = sorted(trace_dir.glob("export_*.json"))
        data = json.loads(export_file.read_text())
        assert isinstance(data["traceEvents"], list)
        assert data["traceEvents"]
        assert data["metrics"]["counters"]["executor.chunks.completed"] >= 1

    def test_obs_export_missing_dir_fails(self, tmp_path):
        code, text = run_cli(
            ["obs", "export", "--trace-dir", str(tmp_path / "nothing")]
        )
        assert code == 1
        assert "error:" in text

    def test_flags_do_not_change_results(self, capsys):
        base = ["ber", "--distance", "2", "--frames", "3", "--seed", "1"]
        code, plain = run_cli(base)
        assert code == 0
        capsys.readouterr()  # drop any buffered console events
        code, observed = run_cli(base + ["--log-json", "--profile"])
        assert code == 0
        capsys.readouterr()
        # Identical headline numbers: telemetry never leaks into results.
        assert plain.splitlines()[0] == observed.splitlines()[0]


class TestObsLedgerCommands:
    BASE = ["ber", "--distance", "2", "--frames", "3", "--seed", "1"]

    def _recorded_run(self, ledger, extra=()):
        code, text = run_cli(self.BASE + list(extra) +
                             ["--manifest-dir", str(ledger)])
        assert code == 0
        return text

    def test_manifest_dir_finalizes_complete_manifest(self, tmp_path):
        from repro.obs import manifest

        ledger = tmp_path / "ledger"
        plain_code, plain = run_cli(self.BASE)
        assert plain_code == 0
        recorded = self._recorded_run(ledger)
        # Recording a manifest never touches the command's own output.
        assert recorded == plain
        [run_id] = manifest.list_runs(ledger)
        data = manifest.load(ledger, run_id)
        assert data["status"] == "complete"
        assert data["exit_code"] == 0
        assert data["command"] == "ber"
        assert data["execution"]["trials"] == 3
        assert data["argv"][0] == "ber"
        assert data["metrics"]["counters"]["engine.downlink.trials"] == 3

    def test_obs_runs_and_report_render_ledger(self, tmp_path):
        ledger = tmp_path / "ledger"
        self._recorded_run(ledger)
        code, table = run_cli(["obs", "runs", "--manifest-dir", str(ledger)])
        assert code == 0
        from repro.obs import manifest

        [run_id] = manifest.list_runs(ledger)
        assert run_id in table
        # Default report targets the latest run; --run pins one.
        for extra in ([], ["--run", run_id]):
            code, report = run_cli(
                ["obs", "report", "--manifest-dir", str(ledger)] + extra
            )
            assert code == 0
            assert run_id in report
            assert "ber --distance 2" in report

    def test_obs_diff_two_runs(self, tmp_path):
        ledger = tmp_path / "ledger"
        self._recorded_run(ledger)
        self._recorded_run(ledger, extra=["--seed", "2"])
        from repro.obs import manifest

        run_a, run_b = manifest.list_runs(ledger)
        code, text = run_cli(
            ["obs", "diff", run_a, run_b, "--manifest-dir", str(ledger)]
        )
        assert code == 0
        assert run_a in text and run_b in text
        # Different --seed means a different config fingerprint.
        assert "[CHANGED]" in text

    def test_obs_report_unknown_run_exits_2_listing_available(self, tmp_path):
        ledger = tmp_path / "ledger"
        self._recorded_run(ledger)
        from repro.obs import manifest

        [run_id] = manifest.list_runs(ledger)
        code, text = run_cli(
            ["obs", "report", "--run", "ghost", "--manifest-dir", str(ledger)]
        )
        assert code == 2
        assert "no manifest for run 'ghost'" in text
        assert run_id in text

    def test_obs_export_unknown_run_exits_2_listing_available(self, tmp_path):
        trace_dir = tmp_path / "traces"
        run_cli(self.BASE + ["--trace-dir", str(trace_dir)])
        from repro import obs

        [run_id] = obs.list_runs(str(trace_dir))
        code, text = run_cli(
            ["obs", "export", "--trace-dir", str(trace_dir), "--run", "ghost"]
        )
        assert code == 2
        assert "no trace for run 'ghost'" in text
        assert run_id in text

    def test_obs_diff_unknown_run_exits_2(self, tmp_path):
        ledger = tmp_path / "ledger"
        code, text = run_cli(
            ["obs", "diff", "a", "b", "--manifest-dir", str(ledger)]
        )
        assert code == 2
        assert "no runs recorded yet" in text

    def test_metrics_port_announces_and_keeps_stdout_identical(self, capsys):
        code, plain = run_cli(self.BASE)
        assert code == 0
        capsys.readouterr()
        code, observed = run_cli(self.BASE + ["--metrics-port", "0"])
        assert code == 0
        err = capsys.readouterr().err
        assert "metrics on 127.0.0.1:" in err
        assert observed == plain
