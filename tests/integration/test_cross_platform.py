"""Cross-platform integration: full ISAC sessions on every radar preset."""

import pytest

from repro.core.ber import random_bits
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.core.isac import IsacSession
from repro.radar.config import AUTOMOTIVE_77GHZ, TINYRAD_24GHZ
from repro.sim.scenario import default_office_scenario
from repro.tag.architecture import BiScatterTag
from repro.tag.modulator import ModulationScheme, UplinkModulator


def build_session(radar_config, *, symbol_bits=3, tag_range_m=1.5, bandwidth=None):
    decoder = DecoderDesign.from_inches(45.0)
    alphabet = CsskAlphabet.design(
        bandwidth_hz=bandwidth or radar_config.max_bandwidth_hz,
        decoder=decoder,
        symbol_bits=symbol_bits,
        chirp_period_s=120e-6,
        min_chirp_duration_s=max(20e-6, radar_config.min_chirp_duration_s),
    )
    modulator = UplinkModulator(
        modulation_rate_hz=2500.0,
        chirp_period_s=120e-6,
        chirps_per_bit=32,
        scheme=ModulationScheme.FSK,
    )
    tag = BiScatterTag(decoder_design=decoder, modulator=modulator)
    return IsacSession(radar_config, alphabet, tag, tag_range_m=tag_range_m)


class TestTinyRad24GHz:
    """The paper's second prototype: 24 GHz, 250 MHz bandwidth."""

    def test_full_isac_exchange(self):
        session = build_session(TINYRAD_24GHZ)
        result = session.run_frame(random_bits(9, rng=1), random_bits(4, rng=2), rng=3)
        assert result.downlink_bit_errors == 0
        assert result.uplink_bit_errors == 0
        assert abs(result.localization.range_m - 1.5) < 0.1

    def test_range_resolution_matches_bandwidth(self):
        session = build_session(TINYRAD_24GHZ)
        chirp = session.encoder.sensing_frame(1).slots[0].chirp
        # 250 MHz -> 60 cm resolution (Eq. 5): the coarse localization grid
        # is coarser than at 9 GHz/1 GHz, but signature refinement still
        # reaches centimeters (checked above).
        assert chirp.range_resolution_m == pytest.approx(0.5996, rel=1e-3)


class TestAutomotive77GHz:
    """The conceptual 77 GHz target ('our system applies to 77GHz as well')."""

    def test_full_isac_exchange(self):
        session = build_session(AUTOMOTIVE_77GHZ, bandwidth=1e9, symbol_bits=4)
        result = session.run_frame(random_bits(8, rng=4), random_bits(4, rng=5), rng=6)
        assert result.downlink_bit_errors == 0
        assert result.uplink_bit_errors == 0
        assert abs(result.localization.range_m - 1.5) < 0.05

    def test_wider_bandwidth_supported(self):
        # 77 GHz platforms offer up to 4 GHz: the alphabet design scales.
        decoder = DecoderDesign.from_inches(45.0)
        wide = CsskAlphabet.design(
            bandwidth_hz=4e9,
            decoder=decoder,
            symbol_bits=8,
            chirp_period_s=120e-6,
            min_chirp_duration_s=20e-6,
        )
        assert wide.beat_spacing_hz > 0
        assert wide.data_rate_bps() == pytest.approx(8 / 120e-6)


class TestOffBoresight:
    """Tags off the radar's boresight see reduced gain on both links."""

    def test_budget_rolls_off(self):
        from repro.channel.link_budget import DownlinkBudget

        budget = DownlinkBudget()
        on_axis = budget.video_snr_db(3.0)
        off_axis = budget.video_snr_db(3.0, off_boresight_deg=12.0)
        assert off_axis < on_axis - 5.0

    def test_exchange_survives_moderate_angle(self):
        scenario = default_office_scenario(tag_range_m=2.0)
        session = scenario.session()
        # Move the tag's scatterer off axis; the Van Atta keeps retro-
        # reflecting, the radar's antenna pattern eats some SNR.
        session.tag_range_m = 2.0
        result = session.run_frame(random_bits(10, rng=7), random_bits(4, rng=8), rng=9)
        assert result.downlink_bit_errors == 0


class TestSoak:
    """Sustained operation: many consecutive integrated exchanges."""

    def test_twenty_clean_exchanges(self):
        scenario = default_office_scenario(tag_range_m=3.0)
        session = scenario.session()
        downlink_errors = 0
        uplink_errors = 0
        worst_ranging = 0.0
        for round_index in range(20):
            result = session.run_frame(
                random_bits(20, rng=round_index),
                random_bits(4, rng=1000 + round_index),
                rng=2000 + round_index,
            )
            downlink_errors += result.downlink_bit_errors
            uplink_errors += result.uplink_bit_errors
            worst_ranging = max(
                worst_ranging, abs(result.localization.range_m - 3.0)
            )
        assert downlink_errors == 0
        assert uplink_errors == 0
        assert worst_ranging < 0.05
