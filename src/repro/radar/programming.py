"""Commercial chirp-engine programming: CSSK as radar register profiles.

The paper's compatibility claim — "the downlink waveform can be generated
by simply changing the radar chirp duration, making this modulation scheme
compatible with off-the-shelf FMCW radars" — rests on how real chirp
engines are programmed (ref [18], TI's chirp-parameter application note):
a small bank of **chirp profiles** (start frequency, slope, idle time, ADC
timing) plus a **frame sequencer** that plays profiles in a programmed
order.

This module implements that abstraction and the compiler from a BiScatter
packet to it:

* :class:`ChirpProfile` — one register-bank entry, with the quantization a
  real synthesizer imposes (slope and timing step sizes).
* :class:`ChirpEngine` — the profile bank (bounded size) + sequence,
  mirroring TI-style constraints (max profiles, min idle, ramp-timer
  granularity).
* :func:`compile_frame` — a `FrameSchedule` → engine program, sharing
  profiles between identical chirps (a CSSK alphabet needs exactly
  `N_slope` profiles regardless of payload length).
* round-trip back to a `FrameSchedule` so tests can verify the quantized
  program still decodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, WaveformError
from repro.utils.validation import ensure_positive
from repro.waveform.frame import FrameSchedule
from repro.waveform.parameters import ChirpParameters


@dataclass(frozen=True)
class EngineLimits:
    """Hardware constraints of a commercial chirp engine.

    Defaults follow TI AWR/IWR-class devices: 4-16 profile slots, ~10 ns
    timing granularity, kHz/us slope granularity, >= 2 us idle.
    """

    max_profiles: int = 16
    timing_step_s: float = 10e-9
    slope_step_hz_per_s: float = 1e9  # 1 kHz/us
    min_idle_s: float = 2e-6
    max_sequence_length: int = 512

    def __post_init__(self) -> None:
        if self.max_profiles < 1:
            raise ConfigurationError(f"max_profiles must be >= 1, got {self.max_profiles}")
        ensure_positive("timing_step_s", self.timing_step_s)
        ensure_positive("slope_step_hz_per_s", self.slope_step_hz_per_s)
        ensure_positive("min_idle_s", self.min_idle_s)


@dataclass(frozen=True)
class ChirpProfile:
    """One chirp-engine register bank entry (quantized parameters)."""

    start_frequency_hz: float
    slope_hz_per_s: float
    ramp_time_s: float
    idle_time_s: float

    @property
    def bandwidth_hz(self) -> float:
        return self.slope_hz_per_s * self.ramp_time_s

    @property
    def period_s(self) -> float:
        return self.ramp_time_s + self.idle_time_s

    def to_chirp(self, amplitude: float = 1.0) -> ChirpParameters:
        """The waveform this profile produces."""
        return ChirpParameters(
            start_frequency_hz=self.start_frequency_hz,
            bandwidth_hz=self.bandwidth_hz,
            duration_s=self.ramp_time_s,
            amplitude=amplitude,
        )


@dataclass
class ChirpEngine:
    """A programmed chirp engine: profile bank + play sequence."""

    limits: EngineLimits = field(default_factory=EngineLimits)
    profiles: "list[ChirpProfile]" = field(default_factory=list)
    sequence: "list[int]" = field(default_factory=list)

    def add_profile(self, profile: ChirpProfile) -> int:
        """Register a profile (dedup by value); returns its index."""
        for index, existing in enumerate(self.profiles):
            if existing == profile:
                return index
        if len(self.profiles) >= self.limits.max_profiles:
            raise WaveformError(
                f"profile bank full ({self.limits.max_profiles}); a CSSK alphabet "
                "with more slopes than profile slots cannot run on this engine"
            )
        if profile.idle_time_s < self.limits.min_idle_s - 1e-15:
            raise WaveformError(
                f"idle time {profile.idle_time_s}s below the engine minimum "
                f"{self.limits.min_idle_s}s"
            )
        self.profiles.append(profile)
        return len(self.profiles) - 1

    def append(self, profile_index: int) -> None:
        """Append one play step to the sequence."""
        if not 0 <= profile_index < len(self.profiles):
            raise WaveformError(f"profile index {profile_index} not in the bank")
        if len(self.sequence) >= self.limits.max_sequence_length:
            raise WaveformError(
                f"sequence full ({self.limits.max_sequence_length} steps)"
            )
        self.sequence.append(profile_index)

    @property
    def num_profiles(self) -> int:
        return len(self.profiles)

    def to_frame(self) -> FrameSchedule:
        """The waveform the programmed engine will actually emit."""
        chirps = [self.profiles[i].to_chirp() for i in self.sequence]
        slots = []
        time_cursor = 0.0
        from repro.waveform.frame import ChirpSlot

        for step, chirp in zip(self.sequence, chirps):
            period = self.profiles[step].period_s
            slots.append(
                ChirpSlot(chirp=chirp, start_time_s=time_cursor, period_s=period)
            )
            time_cursor += period
        return FrameSchedule(slots=tuple(slots))


def _quantize(value: float, step: float) -> float:
    return round(value / step) * step


def profile_for_chirp(
    chirp: ChirpParameters, period_s: float, limits: EngineLimits
) -> ChirpProfile:
    """Quantize one chirp + slot period to engine registers."""
    ramp = _quantize(chirp.duration_s, limits.timing_step_s)
    idle = _quantize(period_s - chirp.duration_s, limits.timing_step_s)
    slope = _quantize(chirp.slope_hz_per_s, limits.slope_step_hz_per_s)
    if ramp <= 0:
        raise WaveformError(f"chirp duration {chirp.duration_s}s quantizes to zero")
    if idle < limits.min_idle_s - 1e-15:
        raise WaveformError(
            f"slot leaves {idle}s idle, below the engine minimum {limits.min_idle_s}s"
        )
    return ChirpProfile(
        start_frequency_hz=chirp.start_frequency_hz,
        slope_hz_per_s=slope,
        ramp_time_s=ramp,
        idle_time_s=idle,
    )


def compile_frame(
    frame: FrameSchedule, *, limits: EngineLimits | None = None
) -> ChirpEngine:
    """Compile a frame schedule into an engine program.

    Identical chirps (same slope/duration/period) share a profile slot, so
    a CSSK packet needs `num_distinct_slopes` slots — the quantity that
    must fit the hardware's bank, not the packet length.
    """
    limits = limits or EngineLimits()
    if len(frame) > limits.max_sequence_length:
        raise WaveformError(
            f"frame of {len(frame)} chirps exceeds the engine's "
            f"{limits.max_sequence_length}-step sequencer"
        )
    engine = ChirpEngine(limits=limits)
    for slot in frame.slots:
        profile = profile_for_chirp(slot.chirp, slot.period_s, limits)
        engine.append(engine.add_profile(profile))
    return engine


def quantization_beat_error_hz(
    engine: ChirpEngine, delta_t_s: float
) -> np.ndarray:
    """Per-step beat-frequency error the register quantization introduces.

    The tag sees ``alpha * dT``; quantizing the slope perturbs it.  For the
    compatibility claim to hold, these errors must be small against the
    alphabet's beat spacing — asserted in the tests/bench.
    """
    ensure_positive("delta_t_s", delta_t_s)
    errors = []
    for index in engine.sequence:
        profile = engine.profiles[index]
        exact_slope = profile.bandwidth_hz / profile.ramp_time_s
        errors.append((profile.slope_hz_per_s - exact_slope) * delta_t_s)
    return np.asarray(errors)
