"""Generic parameter-sweep helper with reproducible per-point seeding.

Sweeps run on the :mod:`repro.sim.executor` layer: each point's RNG is
index-keyed off the root seed (point ``i`` -> ``SeedSpec.stream(i)``),
so the values are bit-identical for any ``workers`` choice and editing
one point's workload does not perturb the others.  Per-chunk wall-clock
timings land in ``SweepResult.metadata["_execution"]`` — a volatile side
channel that :func:`repro.sim.executor.strip_execution` removes when
comparing results across execution plans.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.sim.executor import ExecutionPlan, map_trials
from repro.sim.results import SweepResult
from repro.utils.rng import SeedSpec


def _sweep_chunk(payload, spec: SeedSpec, indices) -> "list[float]":
    """Evaluate one chunk of sweep points with index-keyed streams."""
    evaluate, params = payload
    return [float(evaluate(params[index], spec.stream(index))) for index in indices]


class _SeriesEvaluate:
    """Picklable adapter binding a grid ``evaluate`` to one series context."""

    def __init__(self, evaluate: "Callable[[Any, float, np.random.Generator], float]", context: Any):
        self.evaluate = evaluate
        self.context = context

    def __call__(self, parameter: float, stream: np.random.Generator) -> float:
        return self.evaluate(self.context, parameter, stream)


def sweep(
    label: str,
    parameters: "Sequence[float]",
    evaluate: "Callable[[float, np.random.Generator], float]",
    *,
    rng: "int | np.random.Generator | SeedSpec | None" = 0,
    metadata: "dict[str, Any] | None" = None,
    execution: "ExecutionPlan | None" = None,
) -> SweepResult:
    """Evaluate ``evaluate(parameter, rng)`` over a parameter list.

    Each point receives an independent child RNG keyed by its index, so
    (a) the whole sweep is reproducible from one seed, (b) editing one
    point's workload does not perturb the others, and (c) the result is
    the same whether points run serially or across a process pool.  With
    ``execution.workers > 1`` the ``evaluate`` callable must be picklable
    (module-level function or picklable callable object); unpicklable
    callables fall back to the serial backend, noted in
    ``metadata["_execution"]["backend"]``.
    """
    params = [float(p) for p in parameters]
    if not params:
        raise ValueError("parameters must be non-empty")
    values, report = map_trials(
        _sweep_chunk, (evaluate, params), len(params), rng, execution
    )
    combined = dict(metadata or {})
    combined["_execution"] = report.as_metadata()
    return SweepResult(
        label=label,
        parameters=params,
        values=values,
        metadata=combined,
    )


def sweep_grid(
    series: "dict[str, Any]",
    parameters: "Sequence[float]",
    evaluate: "Callable[[Any, float, np.random.Generator], float]",
    *,
    rng: "int | np.random.Generator | SeedSpec | None" = 0,
    execution: "ExecutionPlan | None" = None,
) -> "list[SweepResult]":
    """Sweep the same parameter list for several labelled series.

    ``series`` maps label -> series context object passed to ``evaluate``;
    returns one :class:`SweepResult` per series.  Series ``k`` sweeps
    under seed child ``k`` of the root — the same derivation the serial
    implementation has always used — so grid results are reproducible
    and worker-count independent too.
    """
    if not series:
        raise ValueError("series must be non-empty")
    parent = SeedSpec.from_rng(rng)
    results = []
    for series_index, (label, context) in enumerate(series.items()):
        results.append(
            sweep(
                label,
                parameters,
                _SeriesEvaluate(evaluate, context),
                rng=parent.child(series_index),
                metadata={"series": label},
                execution=execution,
            )
        )
    return results
