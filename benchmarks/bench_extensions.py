"""Extension benches — MCU compute cost (§4.1) and multi-radar coexistence (§6).

Two quantitative arguments the paper makes in prose, regenerated as tables:

* "replacing the FFT with the Goertzel filter ... can reduce power usage"
  — MAC counts, MCU duty, and energy per decoded chirp for full-FFT,
  Goertzel-per-candidate, and this package's duration-aware GLRT.
* "slotted aloha and similar time division multiplexing techniques can be
  used for extending the proposed system to multi-radar scenarios" —
  downlink symbol survival under contention vs. time division.
"""


from conftest import emit
from repro.core.coexistence import CoexistenceSimulator, interference_noise_rise_db
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.sim.results import format_table
from repro.tag.compute_cost import McuModel, analyze_strategies


def run_compute_study(paper_alphabet):
    small = CsskAlphabet.design(
        bandwidth_hz=1e9,
        decoder=DecoderDesign.from_inches(45.0),
        symbol_bits=2,
        chirp_period_s=120e-6,
    )
    # Two cores: the paper's 1 MHz ADC-pacing core (no hardware MAC), and a
    # 48 MHz DSP-extension core (single-cycle MAC) at a realistic 12 mW.
    mcus = {
        "1 MHz MCU": McuModel(clock_hz=1e6, cycles_per_mac=4.0, active_power_w=40e-3),
        "48 MHz DSP": McuModel(clock_hz=48e6, cycles_per_mac=1.0, active_power_w=12e-3),
    }
    rows = []
    for label, alphabet in (("2-bit (6 slopes)", small), ("5-bit (34 slopes)", paper_alphabet)):
        for core_label, mcu in mcus.items():
            for report in analyze_strategies(alphabet, mcu=mcu):
                rows.append(
                    [
                        label,
                        core_label,
                        report.strategy,
                        f"{report.macs_per_chirp:.0f}",
                        f"{report.mcu_duty:.2f}",
                        f"{report.energy_per_chirp_j * 1e6:.2f}",
                        "yes" if report.feasible() else "NO",
                    ]
                )
    return rows


def run_coexistence_study():
    rows = []
    for num_radars in (2, 3, 4):
        simulator = CoexistenceSimulator(num_radars=num_radars)
        summary = simulator.compare(duty_cycle=0.5, num_packets=400, rng=num_radars)
        rows.append(
            [
                str(num_radars),
                f"{summary['unslotted_survival']:.2f}",
                f"{summary['unslotted_goodput']:.2f}",
                f"{summary['slotted_survival']:.2f}",
                f"{summary['slotted_goodput']:.2f}",
            ]
        )
    return rows


def test_compute_cost_table(benchmark, paper_alphabet):
    rows = benchmark.pedantic(
        run_compute_study, args=(paper_alphabet,), rounds=1, iterations=1
    )
    table = format_table(
        ["alphabet", "core", "strategy", "MACs/chirp", "MCU duty", "energy/chirp (uJ)", "real-time"],
        rows,
    )
    table += (
        "\nfinding: the 1 MHz ADC-pacing core cannot demodulate in real time for "
        "ANY strategy —\nper-chirp decode needs a buffered/duty-cycled schedule or a "
        "DSP-class core (as the paper's\nlow-power-FFT-processor citations imply)."
    )
    emit("ext_compute_cost", table)

    by_key = {(r[0], r[1], r[2]): r for r in rows}
    # Paper claim: Goertzel beats full FFT (MAC count) for small alphabets.
    small_fft = float(by_key[("2-bit (6 slopes)", "1 MHz MCU", "fft")][3])
    small_goertzel = float(by_key[("2-bit (6 slopes)", "1 MHz MCU", "goertzel")][3])
    assert small_goertzel < small_fft
    # On the DSP-class core, FFT and Goertzel run real-time for every
    # alphabet; the 34-candidate GLRT needs a faster clock or candidate
    # pruning (coarse Goertzel first, GLRT on the top few) — a documented
    # implementation trade.
    for (alphabet, core, strategy), row in by_key.items():
        if core == "48 MHz DSP" and strategy in ("fft", "goertzel"):
            assert row[6] == "yes", (alphabet, row)
    # Honest finding: the bare 1 MHz core is never real-time.
    for (alphabet, core, _), row in by_key.items():
        if core == "1 MHz MCU":
            assert row[6] == "NO"


def test_coexistence_table(benchmark):
    rows = benchmark.pedantic(run_coexistence_study, rounds=1, iterations=1)
    table = format_table(
        [
            "radars",
            "unslotted survival",
            "unslotted goodput",
            "slotted survival",
            "slotted goodput",
        ],
        rows,
    )
    rise = interference_noise_rise_db(-60.0, -100.0, 2e6, 1e9)
    table += (
        f"\ncross-radar sweep through a 2 MHz IF at 40 dB above the floor "
        f"raises it {rise:.1f} dB"
    )
    emit("ext_coexistence", table)

    # Slotted access always survives; contention collapses with more radars.
    survivals = [float(r[1]) for r in rows]
    assert survivals[0] > survivals[-1]
    for row in rows:
        assert float(row[3]) == 1.0
    # At 3+ radars, time division wins on goodput too.
    assert float(rows[-1][4]) > float(rows[-1][2])
