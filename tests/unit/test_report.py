"""Session reports: aggregation, health verdicts, Markdown rendering."""

import pytest

from repro.core.ber import random_bits
from repro.errors import SimulationError
from repro.sim.report import LinkTargets, SessionReport, build_report
from repro.sim.scenario import default_office_scenario


@pytest.fixture(scope="module")
def frame_results():
    scenario = default_office_scenario(tag_range_m=3.0)
    session = scenario.session()
    return [
        session.run_frame(random_bits(10, rng=k), random_bits(4, rng=50 + k), rng=k)
        for k in range(3)
    ]


class TestBuildReport:
    def test_aggregates(self, frame_results):
        report = build_report(frame_results, true_range_m=3.0)
        assert report.num_frames == 3
        assert report.downlink_bits == 30
        assert report.uplink_bits == 12
        assert report.downlink_ber == 0.0
        assert report.uplink_ber == 0.0
        assert len(report.ranging_errors_m) == 3
        assert report.worst_ranging_error_m() < 0.05

    def test_velocities_collected(self, frame_results):
        report = build_report(frame_results)
        assert len(report.velocities_m_s) == 3
        assert all(abs(v) < 0.3 for v in report.velocities_m_s)  # static tag

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            build_report([])

    def test_no_truth_no_ranging_stats(self, frame_results):
        report = build_report(frame_results)
        assert report.ranging_errors_m == []
        assert report.median_ranging_error_m() == 0.0


class TestHealth:
    def test_healthy_session(self, frame_results):
        report = build_report(frame_results, true_range_m=3.0)
        assert report.healthy()

    def test_strict_targets_fail(self, frame_results):
        report = build_report(frame_results, true_range_m=3.0)
        strict = LinkTargets(max_ranging_error_m=0.0)
        # Sub-mm errors still exceed a zero-tolerance target unless exactly 0.
        assert report.healthy(strict) == (report.worst_ranging_error_m() == 0.0)

    def test_targets_validation(self):
        with pytest.raises(SimulationError):
            LinkTargets(max_downlink_ber=-1.0)

    def test_unhealthy_on_errors(self):
        report = SessionReport(
            num_frames=1,
            downlink_bits=10,
            downlink_errors=5,
            uplink_bits=4,
            uplink_errors=0,
        )
        assert not report.healthy()

    def test_no_ranging_data_passes_vacuously_by_default(self, frame_results):
        report = build_report(frame_results)  # no true_range_m -> no errors
        assert report.ranging_errors_m == []
        assert report.healthy()

    def test_require_ranging_fails_without_data(self, frame_results):
        report = build_report(frame_results)
        assert not report.healthy(require_ranging=True)

    def test_require_ranging_passes_with_data(self, frame_results):
        report = build_report(frame_results, true_range_m=3.0)
        assert report.healthy(require_ranging=True)


class TestMarkdown:
    def test_renders_complete_document(self, frame_results):
        report = build_report(frame_results, true_range_m=3.0)
        text = report.to_markdown(title="soak run")
        assert text.startswith("# soak run")
        assert "frames: 3" in text
        assert "BER" in text
        assert "healthy (default targets): yes" in text
        assert text.count("\n0 ") >= 0  # table present
        assert "```" in text

    def test_renders_without_localization(self):
        report = SessionReport(
            num_frames=1,
            downlink_bits=5,
            downlink_errors=0,
            uplink_bits=2,
            uplink_errors=0,
            per_frame_rows=[["0", "0", "0", "-", "-"]],
        )
        text = report.to_markdown()
        # The gap is stated explicitly rather than silently omitted, so a
        # reader cannot mistake "not measured" for "measured fine".
        assert "no ranging data" in text
        assert "median" not in text
