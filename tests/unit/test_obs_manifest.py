"""Run-manifest ledger: lifecycle, durability, hooks, report/diff."""

import io
import json
import os

import numpy as np
import pytest

from repro import obs
from repro.obs import manifest, metrics
from repro.obs.report import render_diff, render_run_report, render_runs_table


def enable(**kwargs):
    kwargs.setdefault("export_env", False)
    kwargs.setdefault("stream", io.StringIO())
    return obs.configure(**kwargs)


@pytest.fixture(autouse=True)
def _manifest_isolation():
    yield
    manifest.discard()


class TestLifecycle:
    def test_begin_writes_running_manifest_immediately(self, tmp_path):
        recorder = manifest.begin(tmp_path, command="ber")
        data = manifest.load(tmp_path, recorder.run_id)
        assert data["status"] == "running"
        assert data["schema_version"] == manifest.MANIFEST_SCHEMA_VERSION
        assert "wall_clock_s" not in data

    def test_finalize_marks_complete_with_wall_clock(self, tmp_path):
        recorder = manifest.begin(tmp_path, argv=["ber", "--frames", "4"],
                                  command="ber")
        path = manifest.finalize(0)
        assert path == recorder.path
        data = manifest.load(tmp_path, recorder.run_id)
        assert data["status"] == "complete"
        assert data["exit_code"] == 0
        assert data["wall_clock_s"] >= 0.0
        assert data["argv"] == ["ber", "--frames", "4"]
        assert manifest.active() is None

    def test_crash_leaves_partial_marked_manifest(self, tmp_path):
        recorder = manifest.begin(tmp_path, command="soak")
        # Simulated crash: the process dies before finalize.
        manifest.discard()
        data = manifest.load(tmp_path, recorder.run_id)
        assert data["status"] == "running"

    def test_no_tmp_leftovers_after_finalize(self, tmp_path):
        manifest.begin(tmp_path)
        manifest.finalize(0)
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    def test_repeat_runs_get_distinct_ledger_entries(self, tmp_path):
        first = manifest.begin(tmp_path, run_id="rsame")
        manifest.finalize(0)
        second = manifest.begin(tmp_path, run_id="rsame")
        manifest.finalize(0)
        assert first.run_id != second.run_id
        assert len(manifest.list_runs(tmp_path)) == 2

    def test_adopts_obs_run_id(self, tmp_path):
        run_id = enable()
        recorder = manifest.begin(tmp_path)
        assert recorder.run_id == run_id

    def test_finalize_without_active_recorder_is_noop(self):
        assert manifest.finalize(0) is None

    def test_notes_without_active_recorder_are_noops(self):
        manifest.note_adaptive({"frames": 1})
        manifest.note_cache(hit=True)
        manifest.note_store_put("f" * 64)
        manifest.note_sweep("s", 1, 0, 1)


class TestSchemaVersioning:
    def test_newer_schema_rejected(self, tmp_path):
        path = manifest.manifest_path(tmp_path, "future")
        with open(path, "w") as handle:
            json.dump({"schema_version": manifest.MANIFEST_SCHEMA_VERSION + 1,
                       "run_id": "future"}, handle)
        with pytest.raises(ValueError, match="schema"):
            manifest.load(tmp_path, "future")

    def test_missing_schema_rejected(self, tmp_path):
        path = manifest.manifest_path(tmp_path, "legacy")
        with open(path, "w") as handle:
            json.dump({"run_id": "legacy"}, handle)
        with pytest.raises(ValueError, match="schema_version"):
            manifest.load(tmp_path, "legacy")

    def test_unknown_run_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            manifest.load(tmp_path, "ghost")

    def test_list_runs_empty_dir(self, tmp_path):
        assert manifest.list_runs(tmp_path / "missing") == []


class TestHooks:
    def test_map_trials_notes_execution(self, tmp_path):
        from repro.sim.executor import ExecutionPlan, map_trials

        recorder = manifest.begin(tmp_path, command="test")
        map_trials(_double_chunk, None, 10, 0, ExecutionPlan(chunk_size=4))
        manifest.finalize(0)
        data = manifest.load(tmp_path, recorder.run_id)
        assert data["execution"]["maps"] == 1
        assert data["execution"]["trials"] == 10
        assert data["execution"]["chunks"] == 3
        assert data["execution"]["faults"]["retries"] == 0

    def test_store_traffic_and_fingerprints_recorded(self, tmp_path):
        from repro.store import ExperimentStore

        store = ExperimentStore(tmp_path / "cache")
        recorder = manifest.begin(tmp_path / "ledger")
        fingerprint = "a" * 64
        assert store.get(fingerprint) is None  # miss
        store.put(fingerprint, "test-kind", {"value": 1.0})
        assert store.get(fingerprint) is not None  # hit
        manifest.finalize(0)
        data = manifest.load(tmp_path / "ledger", recorder.run_id)
        assert data["store"]["hits"] == 1
        assert data["store"]["misses"] == 1
        assert data["store"]["puts"] == 1
        assert data["store"]["fingerprints_seen"] == 1
        assert data["store"]["fingerprint_sample"] == [fingerprint]

    def test_sweep_notes_label_and_cache_split(self, tmp_path):
        from repro.sim.sweep import sweep
        from repro.store import ExperimentStore

        store = ExperimentStore(tmp_path / "cache")
        recorder = manifest.begin(tmp_path / "ledger")
        sweep("warmup", [1.0, 2.0, 3.0], _sweep_eval, rng=0, store=store)
        sweep("warm", [1.0, 2.0, 3.0], _sweep_eval, rng=0, store=store)
        manifest.finalize(0)
        data = manifest.load(tmp_path / "ledger", recorder.run_id)
        labels = {entry["label"]: entry for entry in data["sweeps"]}
        assert labels["warmup"]["store_misses"] == 3
        assert labels["warm"]["store_hits"] == 3

    def test_adaptive_trajectories_recorded(self, tmp_path):
        from repro.sim.adaptive import AdaptiveConfig, run_adaptive_trials

        recorder = manifest.begin(tmp_path)
        run_adaptive_trials(
            _adaptive_chunk, None,
            AdaptiveConfig(min_frames=8, max_frames=16, batch_frames=8,
                           target_rel_width=0.5),
            rng=0,
            counts=_adaptive_counts,
        )
        manifest.finalize(0)
        data = manifest.load(tmp_path, recorder.run_id)
        assert len(data["adaptive"]) == 1
        assert data["adaptive"][0]["frames"] >= 8
        assert "reason" in data["adaptive"][0]

    def test_metrics_snapshot_is_per_run_delta(self, tmp_path):
        enable()
        metrics.inc("pre.existing", 100)
        recorder = manifest.begin(tmp_path)
        metrics.inc("during.run", 3)
        manifest.finalize(0)
        data = manifest.load(tmp_path, recorder.run_id)
        assert data["metrics"]["counters"] == {"during.run": 3}

    def test_fault_event_cap_counts_drops(self, tmp_path):
        recorder = manifest.begin(tmp_path)
        events = [{"kind": "retry", "chunk": i}
                  for i in range(manifest.MAX_FAULT_EVENTS + 5)]
        recorder.note_execution(_FakeReport(events))
        manifest.finalize(0)
        data = manifest.load(tmp_path, recorder.run_id)
        assert len(data["fault_events"]) == manifest.MAX_FAULT_EVENTS
        assert data["fault_events_dropped"] == 5


class _FakeReport:
    def __init__(self, events):
        self._events = events

    def as_metadata(self):
        return {
            "num_trials": 0, "total_seconds": 0.0, "chunks": [],
            "faults": {"retries": len(self._events), "pool_rebuilds": 0,
                       "timeouts": 0, "serial_recovered_chunks": 0,
                       "events": self._events},
        }


def _double_chunk(payload, spec, indices):
    return [float(index) for index in indices]


def _sweep_eval(parameter, rng):
    return float(parameter * 2.0)


def _adaptive_chunk(payload, spec, indices):
    return [(int(spec.stream(index).random() < 0.3), 5) for index in indices]


def _adaptive_counts(result):
    return result


class TestDeterminism:
    def test_results_bit_exact_with_manifest_active(self, tmp_path):
        """Telemetry is one-way: recording a manifest changes nothing."""
        from repro.sim.executor import ExecutionPlan, map_trials

        def run():
            results, _report = map_trials(
                _noise_chunk, None, 32, 1234, ExecutionPlan(chunk_size=8)
            )
            return results

        baseline = run()
        enable()
        manifest.begin(tmp_path)
        with_manifest = run()
        manifest.finalize(0)
        assert with_manifest == baseline


def _noise_chunk(payload, spec, indices):
    return [float(spec.stream(index).standard_normal()) for index in indices]


class TestReportRendering:
    def _finalized(self, tmp_path, during=None, **kwargs):
        recorder = manifest.begin(tmp_path, **kwargs)
        if during is not None:
            during()
        manifest.note_cache(hit=True, fingerprint="b" * 64)
        manifest.note_adaptive({
            "frames": 120, "rounds": 3, "errors": 4, "bits": 600,
            "ci_low": 0.002, "ci_high": 0.02, "rel_width": 0.9,
            "reason": "ci_width",
        })
        manifest.finalize(0)
        return manifest.load(tmp_path, recorder.run_id)

    def test_report_contains_key_sections(self, tmp_path):
        enable()
        data = self._finalized(
            tmp_path, argv=["ber", "--frames", "9"], command="ber",
            config_fingerprint="cafe" * 16,
            during=lambda: metrics.observe("stage.seconds", 0.3),
        )
        text = render_run_report(data)
        assert "ber --frames 9" in text
        assert "stop=ci_width" in text
        assert "1 hits" in text
        assert "stage.seconds" in text
        assert "complete" in text

    def test_runs_table_lists_every_run(self, tmp_path):
        first = self._finalized(tmp_path, command="ber")
        second = self._finalized(tmp_path, command="robustness")
        table = render_runs_table([first, second])
        assert first["run_id"] in table
        assert second["run_id"] in table
        assert "robustness" in table

    def test_runs_table_empty(self):
        assert "no runs" in render_runs_table([])

    def test_diff_flags_config_change(self, tmp_path):
        a = self._finalized(tmp_path, config_fingerprint="aaaa")
        b = self._finalized(tmp_path, config_fingerprint="bbbb")
        text = render_diff(a, b)
        assert "[CHANGED]" in text
        assert "aaaa -> bbbb" in text

    def test_diff_reports_counter_deltas(self, tmp_path):
        enable()
        a = self._finalized(tmp_path)
        b = self._finalized(
            tmp_path, during=lambda: metrics.inc("extra.counter", 5)
        )
        text = render_diff(a, b)
        assert "extra.counter" in text


class TestAtomicWriteAlias:
    def test_public_alias_round_trips(self, tmp_path):
        from repro.store import atomic_write_bytes

        target = tmp_path / "nested" / "blob.json"
        atomic_write_bytes(target, b'{"ok": true}')
        assert json.loads(target.read_text()) == {"ok": True}
        assert not [n for n in os.listdir(target.parent)
                    if n.endswith(".tmp")]
