"""Moving-tag integration: communication + tracking with Doppler present."""

import pytest

from repro.core.ber import random_bits
from repro.core.isac import IsacSession
from repro.sim.scenario import default_office_scenario


def moving_session(velocity, range_m=4.0):
    scenario = default_office_scenario(tag_range_m=range_m)
    return IsacSession(
        scenario.radar_config,
        scenario.alphabet,
        scenario.tag,
        tag_range_m=range_m,
        tag_velocity_m_s=velocity,
        clutter=scenario.clutter,
    )


class TestMovingTag:
    @pytest.mark.parametrize("velocity", [0.0, 1.5, -2.0])
    def test_exchange_survives_motion(self, velocity):
        session = moving_session(velocity)
        result = session.run_frame(random_bits(20, rng=1), random_bits(4, rng=2), rng=3)
        assert result.downlink_bit_errors == 0
        assert result.uplink_bit_errors == 0

    @pytest.mark.parametrize("velocity", [1.5, -2.0])
    def test_velocity_estimated(self, velocity):
        session = moving_session(velocity)
        result = session.run_frame(random_bits(20, rng=1), random_bits(4, rng=2), rng=3)
        assert result.estimated_velocity_m_s == pytest.approx(velocity, abs=0.2)

    def test_static_tag_reads_zero_velocity(self):
        session = moving_session(0.0)
        result = session.run_frame(random_bits(20, rng=4), random_bits(4, rng=5), rng=6)
        assert abs(result.estimated_velocity_m_s) < 0.2

    def test_localization_tracks_mid_frame_position(self):
        # At 2 m/s over a ~23 ms frame the tag moves ~5 cm; the estimate
        # should land within the traversed segment.
        session = moving_session(2.0, range_m=3.0)
        result = session.run_frame(random_bits(20, rng=7), random_bits(4, rng=8), rng=9)
        traversed = 2.0 * result.frame.duration_s
        assert 3.0 - 0.03 < result.localization.range_m < 3.0 + traversed + 0.03

    def test_scenario_velocity_passthrough(self):
        scenario = default_office_scenario(tag_range_m=2.0)
        from dataclasses import replace

        moving = replace(scenario, tag_velocity_m_s=1.0)
        session = moving.session()
        assert session.tag_velocity_m_s == 1.0
