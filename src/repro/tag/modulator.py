"""Uplink modulator: switch schedules for OOK / FSK backscatter.

The tag toggles its Van Atta line switch at an assigned modulation rate;
sampled at the radar's chirp rate (slow time) the toggling appears as a
square wave whose fundamental identifies — and localizes — the tag
(paper Section 3.2.3 / 3.3).  The modulation rate must stay below the
slow-time Nyquist rate ``1 / (2 T_period)``.

Schemes:

* **OOK** — data bit 1 = toggle at the assigned rate for a bit period,
  bit 0 = stay reflective; the radar detects tone presence.
* **FSK** — bit 0 / bit 1 = toggle at two distinct rates; the radar picks
  the stronger signature (more robust, used by default in examples).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import ensure_positive


class ModulationScheme(enum.Enum):
    """Uplink backscatter modulation type."""

    OOK = "ook"
    FSK = "fsk"


@dataclass(frozen=True)
class UplinkModulator:
    """Generates per-chirp switch schedules for uplink data.

    Parameters
    ----------
    modulation_rate_hz:
        Fundamental switching rate (tag identity in a multi-tag network).
    chirp_period_s:
        The radar frame's slot period (slow-time sample interval).
    chirps_per_bit:
        Slow-time samples spent on each uplink bit; more chirps = sharper
        signature = lower uplink BER but lower rate.
    scheme:
        OOK or FSK.
    fsk_rate_1_hz:
        Second tone for FSK (bit 1); defaults to 1.5x the base rate.
    """

    modulation_rate_hz: float
    chirp_period_s: float
    chirps_per_bit: int = 32
    scheme: ModulationScheme = ModulationScheme.OOK
    fsk_rate_1_hz: float | None = None

    def __post_init__(self) -> None:
        ensure_positive("modulation_rate_hz", self.modulation_rate_hz)
        ensure_positive("chirp_period_s", self.chirp_period_s)
        if self.chirps_per_bit < 4:
            raise ConfigurationError(f"chirps_per_bit must be >= 4, got {self.chirps_per_bit}")
        nyquist = 1.0 / (2.0 * self.chirp_period_s)
        if self.modulation_rate_hz >= nyquist:
            raise ConfigurationError(
                f"modulation rate {self.modulation_rate_hz}Hz exceeds the slow-time "
                f"Nyquist rate {nyquist}Hz for period {self.chirp_period_s}s"
            )
        if self.scheme is ModulationScheme.FSK:
            rate_1 = self.effective_fsk_rate_1_hz
            if rate_1 >= nyquist:
                raise ConfigurationError(
                    f"FSK rate-1 {rate_1}Hz exceeds the slow-time Nyquist rate {nyquist}Hz"
                )

    def with_clock_offset(self, offset_ppm: float) -> "UplinkModulator":
        """This modulator as driven by a drifted tag oscillator.

        A real tag divides one oscillator down to its switching rates, so
        a ppm clock error scales *both* FSK tones by the same factor while
        the radar keeps sampling on its own (nominal) slot grid — which is
        why drift degrades the uplink instead of merely relabelling it.
        Zero offset returns ``self`` unchanged.
        """
        if offset_ppm == 0.0:
            return self
        factor = 1.0 + offset_ppm * 1e-6
        if factor <= 0:
            raise ConfigurationError(
                f"clock offset {offset_ppm} ppm stops the oscillator entirely"
            )
        from dataclasses import replace

        return replace(
            self,
            modulation_rate_hz=self.modulation_rate_hz * factor,
            fsk_rate_1_hz=self.effective_fsk_rate_1_hz * factor,
        )

    @property
    def effective_fsk_rate_1_hz(self) -> float:
        """The FSK bit-1 rate (default 1.5x the base rate)."""
        if self.fsk_rate_1_hz is not None:
            return self.fsk_rate_1_hz
        return 1.5 * self.modulation_rate_hz

    @property
    def bit_duration_s(self) -> float:
        """Airtime of one uplink bit."""
        return self.chirps_per_bit * self.chirp_period_s

    def data_rate_bps(self) -> float:
        """Uplink data rate."""
        return 1.0 / self.bit_duration_s

    def _tone_states(self, rate_hz: float, chirp_times_s: np.ndarray, phase: float) -> np.ndarray:
        """Square-wave switch states (True = reflective) sampled per chirp."""
        cycle = (chirp_times_s * rate_hz + phase) % 1.0
        return cycle < 0.5

    def states_for_bits(
        self, bits: np.ndarray, chirp_times_s: np.ndarray
    ) -> np.ndarray:
        """Per-chirp switch states encoding ``bits`` over a frame.

        ``chirp_times_s`` are the slot start times; the schedule needs
        ``len(bits) * chirps_per_bit`` slots (raises otherwise).
        """
        data = np.asarray(bits, dtype=int)
        times = np.asarray(chirp_times_s, dtype=float)
        needed = data.size * self.chirps_per_bit
        if times.size < needed:
            raise ConfigurationError(
                f"{data.size} bits x {self.chirps_per_bit} chirps/bit needs {needed} "
                f"slots, frame has {times.size}"
            )
        if np.any((data != 0) & (data != 1)):
            raise ConfigurationError("bits must be 0/1")
        states = np.zeros(times.size, dtype=bool)
        # The switch clock runs continuously (a real tag divides one
        # oscillator), so phase accumulates across bit boundaries instead of
        # resetting — this keeps same-rate stretches coherent and their
        # slow-time spectral lines narrow.
        phase = 0.0
        for index, bit in enumerate(data):
            sl = slice(index * self.chirps_per_bit, (index + 1) * self.chirps_per_bit)
            segment_times = times[sl] - times[sl][0]
            segment_span = self.chirps_per_bit * self.chirp_period_s
            if self.scheme is ModulationScheme.OOK:
                if bit == 1:
                    states[sl] = self._tone_states(
                        self.modulation_rate_hz, segment_times, phase
                    )
                else:
                    states[sl] = True  # steady retro-reflection: no signature
                phase = (phase + self.modulation_rate_hz * segment_span) % 1.0
            else:
                rate = self.effective_fsk_rate_1_hz if bit == 1 else self.modulation_rate_hz
                states[sl] = self._tone_states(rate, segment_times, phase)
                phase = (phase + rate * segment_span) % 1.0
        # Remaining slots (beyond the data) idle reflective.
        states[needed:] = True
        return states

    def beacon_states(self, chirp_times_s: np.ndarray) -> np.ndarray:
        """Continuous signature toggling (localization beacon, no data)."""
        times = np.asarray(chirp_times_s, dtype=float)
        return self._tone_states(self.modulation_rate_hz, times - times[0] if times.size else times, 0.0)

    def amplitude_schedule(
        self,
        states: np.ndarray,
        *,
        reflective_amplitude: float = 1.0,
        absorptive_amplitude: float = 0.0,
    ) -> np.ndarray:
        """Map switch states to slow-time backscatter amplitude factors."""
        states = np.asarray(states, dtype=bool)
        return np.where(states, reflective_amplitude, absorptive_amplitude)
