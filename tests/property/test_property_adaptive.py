"""Property-based tests: the adaptive stopping rule is prefix-pure.

The determinism story for adaptive Monte-Carlo rests on one invariant:
the round at which sampling stops is a pure function of the *prefix* of
per-trial outcomes actually consumed — outcomes past the stopping point
can never influence it.  Combined with index-keyed seeding (trial ``i``'s
seed never depends on the stopping decision), this makes adaptive runs
bit-exact across worker counts and chunk sizes.
"""

from hypothesis import given, strategies as st

from repro.sim.adaptive import (
    AdaptiveConfig,
    should_stop,
    stopping_trials,
    wilson_interval,
)

outcomes_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=16),
        st.just(16),
    ),
    min_size=1,
    max_size=200,
)


@st.composite
def configs(draw):
    min_frames = draw(st.integers(min_value=1, max_value=40))
    max_frames = draw(st.integers(min_value=min_frames, max_value=200))
    return AdaptiveConfig(
        target_rel_width=draw(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
        ),
        min_frames=min_frames,
        max_frames=max_frames,
        batch_frames=draw(st.integers(min_value=1, max_value=32)),
        confidence=draw(st.floats(min_value=0.5, max_value=0.999)),
    )


class TestStoppingPrefixPurity:
    @given(outcomes=outcomes_strategy, config=configs(), tail_errors=st.integers(0, 16))
    def test_tail_never_changes_the_stop(self, outcomes, config, tail_errors):
        stop = stopping_trials(outcomes, config)
        # Replace everything past the stopping point with arbitrary data:
        # the decision must not move.
        mutated = outcomes[:stop] + [(tail_errors, 16)] * (len(outcomes) - stop)
        assert stopping_trials(mutated, config) == stop

    @given(outcomes=outcomes_strategy, config=configs())
    def test_extending_the_table_never_changes_the_stop(self, outcomes, config):
        stop = stopping_trials(outcomes, config)
        if stop == len(outcomes) and stop < config.max_frames:
            return  # ran dry before deciding; a longer table may keep going
        extended = outcomes + [(1, 16)] * 50
        assert stopping_trials(extended, config) == stop

    @given(outcomes=outcomes_strategy, config=configs())
    def test_stop_respects_bounds(self, outcomes, config):
        stop = stopping_trials(outcomes, config)
        assert 0 < stop <= min(len(outcomes), config.max_frames)
        limit = min(len(outcomes), config.max_frames)
        if limit >= config.min_frames:
            assert stop >= config.min_frames

    @given(outcomes=outcomes_strategy, config=configs())
    def test_stop_lands_on_round_boundary_or_limit(self, outcomes, config):
        stop = stopping_trials(outcomes, config)
        limit = min(len(outcomes), config.max_frames)
        assert stop == limit or stop % config.batch_frames == 0

    @given(outcomes=outcomes_strategy, config=configs())
    def test_stop_agrees_with_should_stop(self, outcomes, config):
        stop = stopping_trials(outcomes, config)
        if stop < min(len(outcomes), config.max_frames):
            errors = sum(e for e, _ in outcomes[:stop])
            bits = sum(b for _, b in outcomes[:stop])
            assert should_stop(errors, bits, stop, config)

    @given(outcomes=outcomes_strategy, min_frames=st.integers(1, 50))
    def test_degenerate_rule_exhausts_the_cap(self, outcomes, min_frames):
        config = AdaptiveConfig(
            target_rel_width=0.0,
            min_frames=min_frames,
            max_frames=max(min_frames, 120),
            batch_frames=7,
        )
        stop = stopping_trials(outcomes, config)
        assert stop == min(len(outcomes), config.max_frames)


class TestWilsonInterval:
    @given(
        errors=st.integers(min_value=0, max_value=500),
        extra=st.integers(min_value=0, max_value=500),
        confidence=st.floats(min_value=0.5, max_value=0.999),
    )
    def test_interval_brackets_the_estimate(self, errors, extra, confidence):
        total = errors + extra
        lo, hi = wilson_interval(errors, total, confidence=confidence)
        assert 0.0 <= lo <= hi <= 1.0
        if total:
            assert lo <= errors / total <= hi
