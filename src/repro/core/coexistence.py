"""Multi-radar coexistence (paper §6): interference and slotted ALOHA.

When two FMCW radars illuminate the same space, the victim radar's mixer
turns the interferer's (differently-sloped) chirp into a fast frequency
ramp sweeping through the IF band — broadband interference that raises the
noise floor across all range cells.  For the tag's envelope-detecting
decoder, a second radar adds its own beat tone, corrupting CSSK decisions
whenever the two transmit concurrently.

The paper's suggested remedy is time division ("slotted aloha and similar
time division multiplexing techniques").  This module provides:

* :func:`interference_noise_rise_db` — how much a cross-radar chirp raises
  the victim's IF floor (energy spread over the sweep crossing).
* :class:`CoexistenceSimulator` — Monte-Carlo of N radars sharing airtime
  either UNSLOTTED (random transmit instants, collisions possible) or
  SLOTTED (ALOHA schedule, collision-free), measuring downlink symbol
  survival.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.network import slotted_aloha_schedule
from repro.errors import ConfigurationError
from repro.utils.rng import resolve_rng
from repro.utils.validation import ensure_positive


def interference_noise_rise_db(
    interferer_power_dbm: float,
    victim_noise_floor_dbm: float,
    victim_if_bandwidth_hz: float,
    interferer_sweep_span_hz: float,
) -> float:
    """Noise-floor rise at the victim receiver from a crossing FMCW sweep.

    An interfering chirp sweeping a span ``S`` spends a fraction
    ``B_if / S`` of its airtime inside the victim's IF band, so its power
    is diluted by that dwell fraction when time-averaged — the classic
    FMCW-on-FMCW mutual-interference result.  Returns the floor rise in
    dB (>= 0).
    """
    ensure_positive("victim_if_bandwidth_hz", victim_if_bandwidth_hz)
    ensure_positive("interferer_sweep_span_hz", interferer_sweep_span_hz)
    dwell_fraction = min(victim_if_bandwidth_hz / interferer_sweep_span_hz, 1.0)
    from repro.utils.units import dbm_to_watts, watts_to_dbm

    interferer_w = float(dbm_to_watts(interferer_power_dbm))
    floor_w = float(dbm_to_watts(victim_noise_floor_dbm))
    effective_w = interferer_w * dwell_fraction
    return float(watts_to_dbm(floor_w + effective_w)) - victim_noise_floor_dbm


@dataclass
class CoexistenceSimulator:
    """Airtime-level Monte-Carlo of multiple radars near one tag.

    Each radar wants to deliver downlink packets of ``packet_slots`` chirp
    slots.  A tag symbol survives only if no other radar transmitted
    during its slot (concurrent illumination corrupts the envelope
    decoder's beat measurement).  Compare ``unslotted`` (every radar
    transmits continuously) against ``slotted`` (ALOHA time division).

    Parameters
    ----------
    num_radars:
        Radars sharing the space.
    packet_slots:
        Chirp slots per downlink packet.
    slot_s:
        Chirp period (slot duration).
    """

    num_radars: int = 2
    packet_slots: int = 27
    slot_s: float = 120e-6

    def __post_init__(self) -> None:
        if self.num_radars < 1:
            raise ConfigurationError(f"num_radars must be >= 1, got {self.num_radars}")
        if self.packet_slots < 1:
            raise ConfigurationError(f"packet_slots must be >= 1, got {self.packet_slots}")
        ensure_positive("slot_s", self.slot_s)

    def unslotted_symbol_survival(
        self,
        *,
        duty_cycle: float = 1.0,
        num_packets: int = 200,
        rng: int | np.random.Generator | None = 0,
    ) -> float:
        """Fraction of symbols not collided when radars free-run.

        ``duty_cycle`` is each radar's transmit fraction (1.0 = always on:
        with more than one radar everything collides).
        """
        if not 0 < duty_cycle <= 1:
            raise ConfigurationError(f"duty_cycle must be in (0, 1], got {duty_cycle}")
        generator = resolve_rng(rng)
        if self.num_radars == 1:
            return 1.0
        survived = 0
        total = 0
        others = self.num_radars - 1
        for _ in range(num_packets):
            # Each other radar transmits each slot independently with
            # probability duty_cycle (memoryless approximation).
            collisions = generator.random((others, self.packet_slots)) < duty_cycle
            clear = ~np.any(collisions, axis=0)
            survived += int(clear.sum())
            total += self.packet_slots
        return survived / total

    def slotted_symbol_survival(self) -> float:
        """Under the ALOHA schedule each radar owns its slots: no collisions."""
        return 1.0

    def slotted_per_radar_throughput_fraction(self) -> float:
        """Airtime share each radar gets under time division."""
        schedule = slotted_aloha_schedule(
            self.num_radars, self.packet_slots * self.slot_s
        )
        owned = sum(1 for entry in schedule if entry[0] == 0)
        return owned / len(schedule)

    def compare(
        self,
        *,
        duty_cycle: float = 0.5,
        num_packets: int = 200,
        rng: int | np.random.Generator | None = 0,
    ) -> "dict[str, float]":
        """Survival and throughput summary for both access schemes.

        Effective goodput fraction = survival x airtime share.
        """
        unslotted = self.unslotted_symbol_survival(
            duty_cycle=duty_cycle, num_packets=num_packets, rng=rng
        )
        slotted_share = self.slotted_per_radar_throughput_fraction()
        return {
            "unslotted_survival": unslotted,
            "unslotted_goodput": unslotted * duty_cycle,
            "slotted_survival": self.slotted_symbol_survival(),
            "slotted_goodput": slotted_share,
        }
