"""Signal-chain fault injection: composable, seed-deterministic impairments.

This package wraps any point of the radar -> channel -> tag -> decoder
chain with reproducible faults — co-channel interference, tag clock
drift, ADC saturation, chirp loss, impulsive noise — each a frozen
dataclass with a ``severity`` knob in [0, 1] and a ``fingerprint()`` so
impaired runs flow through the content-addressed experiment store.

The two contracts everything downstream relies on:

* **Severity 0 is free** — an inactive impairment (or spec) returns its
  input object unchanged and draws nothing from the RNG, so unimpaired
  runs through the hooks are bit-identical to runs without them
  (``benchmarks/bench_impair_overhead.py`` bounds the residual cost).
* **Injection is deterministic** — impairments apply in spec order from
  the caller's per-trial generator, so results are bit-exact across
  worker counts and cache replays.

See :mod:`repro.sim.robustness` for the severity-sweep harness that
turns these faults into degradation curves.
"""

from repro.impair.models import (
    AdcSaturation,
    ChirpLoss,
    ClockDrift,
    Impairment,
    ImpulsiveNoise,
    InterferenceBurst,
)
from repro.impair.spec import IMPAIRMENT_NAMES, ImpairmentSpec
from repro.impair.inject import impair_if_frame, impair_tag_capture

__all__ = [
    "AdcSaturation",
    "ChirpLoss",
    "ClockDrift",
    "Impairment",
    "ImpulsiveNoise",
    "InterferenceBurst",
    "IMPAIRMENT_NAMES",
    "ImpairmentSpec",
    "impair_if_frame",
    "impair_tag_capture",
]
