"""Graceful degradation: erasure recording, fallbacks, and the
robustness sweep harness."""

import numpy as np
import pytest

from repro.core.ber import random_bits
from repro.errors import SimulationError
from repro.impair import ChirpLoss, ImpairmentSpec
from repro.sim.executor import ExecutionPlan
from repro.sim.robustness import (
    DegradationCurve,
    RobustnessConfig,
    run_robustness_sweep,
)
from repro.sim.scenario import default_office_scenario

#: A spec that *guarantees* decode failure: every chirp blanked.
KILL_SPEC = ImpairmentSpec((ChirpLoss(severity=1.0, max_loss_fraction=1.0),))

#: The mixed bundle the CLI defaults to, at reduced weights for speed.
MIXED = ImpairmentSpec.parse("interference:0.6,drift:0.4,clip:0.5,loss:0.4,impulse:0.5")


@pytest.fixture(scope="module")
def scenario():
    return default_office_scenario(tag_range_m=2.0)


class TestErasureRecording:
    def test_total_loss_records_erasures_not_exceptions(self, scenario):
        session = scenario.session(impairments=KILL_SPEC)
        result = session.run_frame(
            random_bits(10, rng=1), random_bits(4, rng=2), rng=3, frame_index=17
        )
        assert result.erased()
        assert result.erased("uplink")
        stages = {erasure.stage for erasure in result.erasures}
        assert "uplink" in stages
        for erasure in result.erasures:
            assert erasure.frame_index == 17
            assert erasure.error  # the exception class name is recorded

    def test_erased_bits_count_as_errors_never_nan(self, scenario):
        session = scenario.session(impairments=KILL_SPEC)
        result = session.run_frame(
            random_bits(10, rng=1), random_bits(4, rng=2), rng=3
        )
        assert result.uplink is None
        assert result.uplink_bit_errors == 4  # all erased bits are errors
        assert np.isfinite(result.uplink_bit_errors)

    def test_clean_session_has_no_erasures(self, scenario):
        result = scenario.session().run_frame(
            random_bits(10, rng=1), random_bits(4, rng=2), rng=3
        )
        assert result.erasures == ()
        assert not result.erased()
        assert not result.erased("uplink")

    def test_arq_treats_erased_frames_as_nacks(self, scenario):
        from repro.core.arq import ArqController

        controller = ArqController(
            session=scenario.session(impairments=KILL_SPEC), max_retries=1
        )
        delivered, stats = controller.send(
            np.ones(4, dtype=np.uint8), rng=np.random.default_rng(0)
        )
        assert not delivered  # no exception escaped; the transfer just failed
        assert stats.feedback_failures == stats.rounds == 2


class TestIfFallback:
    def test_fallback_engages_under_chirp_loss(self, scenario):
        lossy = ImpairmentSpec((ChirpLoss(severity=1.0, max_loss_fraction=0.5),))
        session = scenario.session(
            impairments=lossy, if_confidence_threshold=2.0
        )
        result = session.run_frame(
            random_bits(10, rng=1), random_bits(4, rng=2), rng=3
        )
        assert len(result.if_fallback_chirps) > 0

    def test_threshold_none_reports_no_fallbacks(self, scenario):
        result = scenario.session().run_frame(
            random_bits(10, rng=1), random_bits(4, rng=2), rng=3
        )
        assert result.if_fallback_chirps == ()

    def test_invalid_threshold_rejected(self, scenario):
        with pytest.raises(SimulationError):
            scenario.session(if_confidence_threshold=0.0)


class TestSweep:
    def test_curve_shape_and_zero_anchor(self, scenario):
        config = RobustnessConfig(
            scenario=scenario, impairments=MIXED,
            severities=(0.0, 1.0), num_frames=3,
        )
        curve = run_robustness_sweep(config, rng=0)
        assert isinstance(curve, DegradationCurve)
        assert curve.severities == [0.0, 1.0]
        assert len(curve.downlink_ber) == len(curve.erasure_rate) == 2
        # Severity 0 anchors at the clean baseline: perfect link here.
        assert curve.downlink_ber[0] == 0.0
        assert curve.erasure_rate[0] == 0.0
        # Degradation is monotone-plausible: max severity no better than 0.
        assert curve.downlink_ber[1] >= curve.downlink_ber[0]
        assert curve.erasure_rate[1] >= curve.erasure_rate[0]
        assert all(np.isfinite(ber) for ber in curve.downlink_ber)

    def test_kill_spec_erases_every_frame(self, scenario):
        config = RobustnessConfig(
            scenario=scenario, impairments=KILL_SPEC,
            severities=(1.0,), num_frames=3,
        )
        curve = run_robustness_sweep(config, rng=0)
        assert curve.erasure_rate == [1.0]
        assert curve.uplink_ber == [1.0]  # every erased bit scored as error

    def test_bit_exact_across_worker_counts(self, scenario):
        config = RobustnessConfig(
            scenario=scenario, impairments=MIXED,
            severities=(0.5,), num_frames=4,
        )
        serial = run_robustness_sweep(config, rng=0)
        pooled = run_robustness_sweep(
            config, rng=0, execution=ExecutionPlan(workers=2)
        )
        assert serial.downlink_ber == pooled.downlink_ber
        assert serial.uplink_ber == pooled.uplink_ber
        assert serial.erasure_rate == pooled.erasure_rate
        assert serial.median_ranging_error_m == pooled.median_ranging_error_m

    def test_store_serves_warm_points(self, scenario, tmp_path):
        from repro.store import ExperimentStore

        store = ExperimentStore(tmp_path / "cache")
        config = RobustnessConfig(
            scenario=scenario, impairments=MIXED,
            severities=(0.0, 0.5), num_frames=2,
        )
        cold = run_robustness_sweep(config, rng=0, store=store)
        assert store.session_misses == 2
        warm = run_robustness_sweep(config, rng=0, store=store)
        assert store.session_hits == 2
        assert cold.downlink_ber == warm.downlink_ber
        assert cold.median_ranging_error_m == warm.median_ranging_error_m

    def test_invalid_configs_rejected(self, scenario):
        with pytest.raises(SimulationError):
            run_robustness_sweep(
                RobustnessConfig(scenario=scenario, impairments=MIXED,
                                 severities=(), num_frames=2)
            )
        with pytest.raises(SimulationError):
            run_robustness_sweep(
                RobustnessConfig(scenario=scenario, impairments=MIXED,
                                 severities=(0.5,), num_frames=0)
            )
        with pytest.raises(SimulationError):
            run_robustness_sweep(
                RobustnessConfig(scenario=scenario, impairments=MIXED,
                                 severities=(1.5,), num_frames=2)
            )

    def test_markdown_renders_every_point(self, scenario):
        config = RobustnessConfig(
            scenario=scenario, impairments=MIXED,
            severities=(0.0, 1.0), num_frames=2,
        )
        text = run_robustness_sweep(config, rng=0).to_markdown()
        assert "severity" in text
        assert "0.00" in text and "1.00" in text


class TestDecoderReacquisition:
    def test_reacquisition_is_noop_on_clean_capture(self, scenario):
        """With sync succeeding first try, retry budget must not change
        the decode (the widened path never runs)."""
        from repro.channel.link_budget import DownlinkBudget
        from repro.core.downlink import DownlinkEncoder
        from repro.core.packet import DownlinkPacket

        alphabet = scenario.alphabet
        encoder = DownlinkEncoder(
            radar_config=scenario.radar_config, alphabet=alphabet
        )
        bits = random_bits(alphabet.symbol_bits * 4, rng=0)
        packet = DownlinkPacket.from_bits(alphabet, bits)
        frame = encoder.encode_packet(packet)
        budget = DownlinkBudget(
            tx_power_dbm=scenario.radar_config.tx_power_dbm,
            radar_antenna=scenario.radar_config.antenna,
            frequency_hz=scenario.radar_config.center_frequency_hz,
        )
        frontend = scenario.tag.frontend(budget)
        capture = frontend.capture(frame, 2.0, rng=1)
        plain = scenario.tag.decoder(alphabet).decode(
            capture, num_payload_symbols=4
        )
        retried = scenario.tag.decoder(alphabet).decode(
            capture, num_payload_symbols=4, reacquisitions=2
        )
        assert np.array_equal(plain.bits, retried.bits)

    def test_sync_error_still_raised_after_budget_exhausted(self, scenario):
        from repro.errors import SyncError
        from repro.tag.frontend import TagCapture

        # Too short to resolve even one chirp period: sync can never
        # succeed, so every widened retry fails too.
        noise = TagCapture(
            samples=np.random.default_rng(0).normal(0.0, 1e-6, 100),
            sample_rate_hz=2e6,
        )
        decoder = scenario.tag.decoder(scenario.alphabet)
        with pytest.raises(SyncError):
            decoder.decode(noise, num_payload_symbols=4, reacquisitions=1)


class TestLocalizationRate:
    """The per-point localization success fraction (PR-8 satellite)."""

    def test_clean_session_localizes_every_frame(self, scenario):
        config = RobustnessConfig(
            scenario=scenario, impairments=MIXED,
            severities=(0.0,), num_frames=3,
        )
        curve = run_robustness_sweep(config, rng=0)
        assert curve.localization_rate == [1.0]

    def test_total_loss_localizes_nothing(self, scenario):
        config = RobustnessConfig(
            scenario=scenario, impairments=KILL_SPEC,
            severities=(1.0,), num_frames=3,
        )
        curve = run_robustness_sweep(config, rng=0)
        assert curve.localization_rate == [0.0]

    def test_curve_carries_one_rate_per_point(self, scenario):
        config = RobustnessConfig(
            scenario=scenario, impairments=MIXED,
            severities=(0.0, 0.5, 1.0), num_frames=2,
        )
        curve = run_robustness_sweep(config, rng=0)
        assert len(curve.localization_rate) == len(curve.severities)
        assert all(0.0 <= rate <= 1.0 for rate in curve.localization_rate)
        text = curve.to_markdown()
        assert "localized" in text

    def test_warm_store_round_trips_the_rate(self, scenario, tmp_path):
        from repro.store import ExperimentStore

        store = ExperimentStore(tmp_path / "cache")
        config = RobustnessConfig(
            scenario=scenario, impairments=MIXED,
            severities=(0.5,), num_frames=2,
        )
        cold = run_robustness_sweep(config, rng=0, store=store)
        warm = run_robustness_sweep(config, rng=0, store=store)
        assert store.session_hits == 1
        assert warm.localization_rate == cold.localization_rate

    def test_pre_metric_cached_record_loads_as_nan(self, scenario, tmp_path):
        """Records written before the metric existed stay loadable."""
        import math

        from repro.sim.robustness import (
            robustness_point_work_unit,
            run_robustness_point,
        )
        from repro.store import ExperimentStore
        from repro.store.fingerprint import fingerprint
        from repro.utils.rng import SeedSpec

        store = ExperimentStore(tmp_path / "cache")
        config = RobustnessConfig(
            scenario=scenario, impairments=MIXED,
            severities=(0.5,), num_frames=2,
        )
        spec = SeedSpec.from_rng(0)
        fresh = run_robustness_point(config, 0.5, spec, store=store)
        assert not math.isnan(fresh["localization_rate"])

        # Rewrite the record as an old server would have stored it —
        # same fingerprint, payload without the new key.
        point_fp = fingerprint(
            "robustness-point", robustness_point_work_unit(config, 0.5, spec)
        )
        old_payload = {
            key: value for key, value in store.get(point_fp)["payload"].items()
            if key != "localization_rate"
        }
        store.put(point_fp, "robustness-point", old_payload)

        loaded = run_robustness_point(config, 0.5, spec, store=store)
        assert math.isnan(loaded["localization_rate"])
        for key, value in old_payload.items():
            assert loaded[key] == value


class TestAdaptiveRobustness:
    def test_adaptive_point_records_trajectory(self, scenario):
        from repro.sim.adaptive import AdaptiveConfig
        from repro.sim.robustness import run_robustness_point
        from repro.utils.rng import SeedSpec

        config = RobustnessConfig(
            scenario=scenario, impairments=MIXED,
            severities=(0.0,), num_frames=8,
        )
        adaptive = AdaptiveConfig(
            target_rel_width=0.5, min_frames=2, max_frames=8, batch_frames=2
        )
        metrics = run_robustness_point(
            config, 0.0, SeedSpec.from_rng(0), adaptive=adaptive
        )
        trajectory = metrics["adaptive"]
        # Severity 0 is error-free: the zero-errors rule fires at min.
        assert trajectory["frames"] == 2
        assert trajectory["reason"] == "zero-errors"

    def test_adaptive_sweep_bit_exact_across_workers(self, scenario):
        from repro.sim.adaptive import AdaptiveConfig

        config = RobustnessConfig(
            scenario=scenario, impairments=MIXED,
            severities=(0.0, 0.5), num_frames=6,
        )
        adaptive = AdaptiveConfig(
            target_rel_width=0.8, min_frames=2, max_frames=6, batch_frames=2
        )
        serial = run_robustness_sweep(config, rng=0, adaptive=adaptive)
        pooled = run_robustness_sweep(
            config, rng=0, adaptive=adaptive,
            execution=ExecutionPlan(workers=2),
        )
        assert serial.downlink_ber == pooled.downlink_ber
        assert serial.erasure_rate == pooled.erasure_rate
        assert serial.localization_rate == pooled.localization_rate
