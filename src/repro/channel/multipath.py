"""Static clutter / multipath: extra reflectors in the scene.

The paper evaluates in "an indoor office space with substantial multipath".
Clutter appears to the radar as additional IF tones at the reflectors'
ranges; BiScatter suppresses it with per-frame background subtraction and
the tag's modulation signature.  On the downlink, multipath adds delayed
copies of the chirp into the tag decoder, which slightly smears the beat
tone; that effect is second-order (the delay spread of a room, ~10s of ns,
shifts the beat by ``alpha * tau_spread`` << the symbol spacing) and is
modelled as an SNR penalty plus the clutter tones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import resolve_rng
from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class ClutterReflector:
    """One static scatterer in the scene."""

    range_m: float
    rcs_m2: float
    angle_deg: float = 0.0

    def __post_init__(self) -> None:
        ensure_positive("range_m", self.range_m)
        ensure_positive("rcs_m2", self.rcs_m2)


@dataclass(frozen=True)
class Clutter:
    """A collection of static reflectors plus a diffuse scattering level.

    Parameters
    ----------
    reflectors:
        Discrete scatterers (walls, shelving, furniture).
    diffuse_rcs_density_m2_per_m:
        Diffuse clutter RCS per meter of range, spread uniformly; models
        carpet/ceiling returns that raise the radar's residual floor.
    """

    reflectors: tuple[ClutterReflector, ...] = field(default_factory=tuple)
    diffuse_rcs_density_m2_per_m: float = 0.0

    def __post_init__(self) -> None:
        if self.diffuse_rcs_density_m2_per_m < 0:
            raise ValueError(
                "diffuse_rcs_density_m2_per_m must be >= 0, "
                f"got {self.diffuse_rcs_density_m2_per_m!r}"
            )

    @classmethod
    def office(
        cls,
        *,
        max_range_m: float = 12.0,
        num_reflectors: int = 6,
        rng: int | np.random.Generator | None = 0,
    ) -> "Clutter":
        """A representative office scene: several strong static reflectors.

        Seeded by default so benches see a stable environment.
        """
        generator = resolve_rng(rng)
        ranges = generator.uniform(1.0, max_range_m, num_reflectors)
        # RCS of office furniture/walls roughly spans -10..+10 dBsm.
        rcs = 10.0 ** (generator.uniform(-10.0, 10.0, num_reflectors) / 10.0)
        angles = generator.uniform(-40.0, 40.0, num_reflectors)
        reflectors = tuple(
            ClutterReflector(range_m=float(r), rcs_m2=float(s), angle_deg=float(a))
            for r, s, a in zip(ranges, rcs, angles)
        )
        return cls(reflectors=reflectors, diffuse_rcs_density_m2_per_m=1e-4)

    def delay_spread_s(self) -> float:
        """Approximate RMS delay spread of the discrete reflectors."""
        if not self.reflectors:
            return 0.0
        from repro.constants import SPEED_OF_LIGHT

        delays = np.array([2.0 * r.range_m / SPEED_OF_LIGHT for r in self.reflectors])
        weights = np.array([r.rcs_m2 for r in self.reflectors])
        mean = np.average(delays, weights=weights)
        return float(np.sqrt(np.average((delays - mean) ** 2, weights=weights)))

    def downlink_snr_penalty_db(self, chirp_slope_hz_per_s: float, beat_spacing_hz: float) -> float:
        """SNR penalty the tag decoder sees from multipath beat smearing.

        Each multipath copy offsets the decoder's beat tone by
        ``alpha * tau_excess``; when that offset is small relative to the
        symbol spacing the energy stays in the correct detection bin and
        the penalty is bounded.  Returns a dB penalty in [0, 6].
        """
        ensure_positive("chirp_slope_hz_per_s", chirp_slope_hz_per_s)
        ensure_positive("beat_spacing_hz", beat_spacing_hz)
        spread = self.delay_spread_s()
        smear_hz = chirp_slope_hz_per_s * spread
        fraction = min(smear_hz / beat_spacing_hz, 1.0)
        return float(6.0 * fraction)
