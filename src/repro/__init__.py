"""BiScatter reproduction: integrated two-way radar backscatter comm + sensing.

Reproduction of *Integrated Two-way Radar Backscatter Communication and
Sensing with Low-power IoT Tags* (Okubo et al., ACM SIGCOMM 2024).

Quick tour of the public API::

    from repro import (
        CsskAlphabet, DecoderDesign,      # CSSK modulation design
        DownlinkPacket, DownlinkEncoder,  # radar-side downlink
        BiScatterTag, TagDecoder,         # the tag
        UplinkModulator, UplinkDecoder,   # tag-to-radar backscatter
        TagLocalizer, IsacSession,        # localization + integrated protocol
        XBAND_9GHZ, TINYRAD_24GHZ,        # radar platforms
        default_office_scenario,          # one-call evaluation setup
    )

See ``examples/quickstart.py`` for a runnable end-to-end exchange.
"""

from repro.core import (
    CsskAlphabet,
    DecoderDesign,
    DownlinkEncoder,
    DownlinkPacket,
    IsacSession,
    MultiTagNetwork,
    TagLocalizer,
    UplinkDecoder,
    bit_error_rate,
    random_bits,
)
from repro.channel import DownlinkBudget, UplinkBudget
from repro.radar import FMCWRadar, RadarConfig, TINYRAD_24GHZ, XBAND_9GHZ, AUTOMOTIVE_77GHZ
from repro.tag import BiScatterTag, TagDecoder, TagPowerModel, UplinkModulator
from repro.sim import Scenario, default_office_scenario
from repro.store import ExperimentStore

__version__ = "1.0.0"

__all__ = [
    "CsskAlphabet",
    "DecoderDesign",
    "DownlinkEncoder",
    "DownlinkPacket",
    "IsacSession",
    "MultiTagNetwork",
    "TagLocalizer",
    "UplinkDecoder",
    "bit_error_rate",
    "random_bits",
    "DownlinkBudget",
    "UplinkBudget",
    "FMCWRadar",
    "RadarConfig",
    "XBAND_9GHZ",
    "TINYRAD_24GHZ",
    "AUTOMOTIVE_77GHZ",
    "BiScatterTag",
    "TagDecoder",
    "TagPowerModel",
    "UplinkModulator",
    "Scenario",
    "default_office_scenario",
    "ExperimentStore",
    "__version__",
]
