"""RF channel models: path loss, link budgets, noise, multipath, Doppler."""

from repro.channel.propagation import (
    free_space_path_loss_db,
    one_way_received_power_dbm,
    radar_received_power_dbm,
)
from repro.channel.link_budget import DownlinkBudget, UplinkBudget
from repro.channel.two_ray import TwoRayDownlinkBudget, TwoRayGeometry
from repro.channel.noise import NoiseModel, awgn, thermal_noise_power_dbm
from repro.channel.multipath import Clutter, ClutterReflector
from repro.channel.doppler import doppler_shift_hz, radial_velocity_phase

__all__ = [
    "free_space_path_loss_db",
    "one_way_received_power_dbm",
    "radar_received_power_dbm",
    "DownlinkBudget",
    "UplinkBudget",
    "TwoRayDownlinkBudget",
    "TwoRayGeometry",
    "NoiseModel",
    "awgn",
    "thermal_noise_power_dbm",
    "Clutter",
    "ClutterReflector",
    "doppler_shift_hz",
    "radial_velocity_phase",
]
