"""Integrated sensing and communication session (paper Section 3.3).

One radar frame simultaneously carries:

* **downlink** — CSSK payload symbols in the chirp slopes,
* **uplink** — the tag's per-chirp OOK/FSK switching in the backscatter,
* **sensing** — the same chirps image the scene; the IF correction makes
  mixed slopes transparent to range/Doppler processing,
* **localization** — the tag's modulation signature pins its range cell.

Because the tag can only decode while its switch is absorptive, a tag that
is simultaneously modulating hears only ~half the chirps.  The session
therefore repeats each downlink symbol across ``downlink_repeats``
consecutive slots, sized so that every repeat group overlaps at least one
absorptive slot of the tag's switching pattern; the tag combines the
copies it heard (non-coherent score combining).  This repetition protocol
is an implementation decision this reproduction makes explicit — the paper
asserts simultaneous operation without detailing the overlap schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.channel.link_budget import DownlinkBudget
from repro.channel.multipath import Clutter
from repro.core.cssk import CsskAlphabet
from repro.core.downlink import DownlinkEncoder
from repro.core.localization import LocalizationResult, TagLocalizer
from repro.core.packet import DownlinkPacket, PacketFields
from repro.core.uplink import UplinkDecoder, UplinkResult
from repro.errors import DecodingError, DetectionError, SimulationError, SyncError
from repro.obs import runtime as _obs_runtime
from repro.radar.config import RadarConfig
from repro.radar.fmcw import FMCWRadar, IFFrame, Scatterer
from repro.radar.if_correction import align_profiles_to_common_grid
from repro.tag.architecture import BiScatterTag
from repro.utils.rng import resolve_rng
from repro.waveform.frame import FrameSchedule


def required_downlink_repeats(
    modulation_rate_hz: float, chirp_period_s: float
) -> int:
    """Smallest repeat count guaranteeing one absorptive slot per group.

    The tag's 50%-duty switching holds each state for
    ``1 / (2 f_mod)`` seconds = ``ceil`` of that in slots; a repeat group
    one slot longer than the worst-case reflective run always overlaps an
    absorptive slot.
    """
    if modulation_rate_hz <= 0 or chirp_period_s <= 0:
        raise SimulationError("modulation rate and chirp period must be positive")
    run_slots = math.ceil(0.5 / (modulation_rate_hz * chirp_period_s))
    return run_slots + 1


@dataclass(frozen=True)
class FrameErasure:
    """One stage of one frame that failed and was recorded, not raised.

    ``stage`` is ``"uplink"`` or ``"localization"``; ``error`` is the
    exception class name; ``frame_index`` / ``symbol_index`` come from the
    structured error fields (or the session's own frame counter) so
    erasure accounting never parses message strings.
    """

    stage: str
    error: str
    message: str
    frame_index: "int | None" = None
    symbol_index: "int | None" = None


@dataclass
class IsacFrameResult:
    """Everything one integrated frame produced."""

    frame: FrameSchedule
    if_frame: IFFrame
    downlink_bits_sent: np.ndarray
    downlink_bits_decoded: np.ndarray
    downlink_symbols_sent: list[int]
    downlink_symbols_decoded: list[int]
    uplink_bits_sent: np.ndarray
    uplink: UplinkResult | None
    localization: LocalizationResult | None
    tag_states: np.ndarray
    estimated_velocity_m_s: float | None = None
    erasures: "tuple[FrameErasure, ...]" = ()
    if_fallback_chirps: "tuple[int, ...]" = ()

    def erased(self, stage: "str | None" = None) -> bool:
        """Whether any (or a specific) stage of this frame was erased."""
        if stage is None:
            return bool(self.erasures)
        return any(erasure.stage == stage for erasure in self.erasures)

    @property
    def downlink_bit_errors(self) -> int:
        compare = min(self.downlink_bits_sent.size, self.downlink_bits_decoded.size)
        errors = int(
            np.count_nonzero(
                self.downlink_bits_sent[:compare] != self.downlink_bits_decoded[:compare]
            )
        )
        return errors + (self.downlink_bits_sent.size - compare)

    @property
    def uplink_bit_errors(self) -> int:
        if self.uplink is None:
            return int(self.uplink_bits_sent.size)
        compare = min(self.uplink_bits_sent.size, self.uplink.bits.size)
        errors = int(
            np.count_nonzero(self.uplink_bits_sent[:compare] != self.uplink.bits[:compare])
        )
        return errors + (self.uplink_bits_sent.size - compare)


class IsacSession:
    """Simulates integrated two-way communication + sensing frames.

    Parameters
    ----------
    radar_config / alphabet / tag:
        The network's shared configuration.
    tag_range_m:
        Radar-tag distance.
    clutter:
        Static environment (None = free space).
    fields:
        Downlink preamble sizing.
    downlink_repeats:
        Per-symbol slot repetition; ``None`` sizes it automatically from
        the tag's modulation rate.
    impairments:
        An :class:`repro.impair.ImpairmentSpec` injected into every frame
        (interference, clock drift, ADC saturation, chirp loss, impulsive
        noise).  ``None`` or an inactive spec leaves the signal chain
        bit-identical to an un-hooked session and draws nothing from the
        frame RNG.
    if_confidence_threshold:
        Peak-to-mean confidence gate for the IF correction; chirps whose
        aligned profile falls below it are replaced with the last
        confident profile of the same frame (see
        :func:`repro.radar.if_correction.align_profiles_to_common_grid`).
        ``None`` disables the gate.
    """

    def __init__(
        self,
        radar_config: RadarConfig,
        alphabet: CsskAlphabet,
        tag: BiScatterTag,
        *,
        tag_range_m: float,
        tag_velocity_m_s: float = 0.0,
        clutter: Clutter | None = None,
        fields: PacketFields | None = None,
        downlink_repeats: int | None = None,
        downlink_budget: DownlinkBudget | None = None,
        impairments=None,
        if_confidence_threshold: float | None = None,
    ) -> None:
        if tag.modulator is None:
            raise SimulationError("ISAC session needs a tag with an uplink modulator")
        if abs(tag.modulator.chirp_period_s - alphabet.chirp_period_s) > 1e-12:
            raise SimulationError(
                "tag modulator and alphabet disagree on the chirp period"
            )
        from repro.tag.modulator import ModulationScheme

        if tag.modulator.scheme is not ModulationScheme.FSK:
            raise SimulationError(
                "simultaneous two-way operation requires FSK uplink modulation: "
                "an OOK 0-bit holds the switch reflective for a whole bit block, "
                "blinding the tag's downlink decoder for arbitrarily long runs"
            )
        self.radar_config = radar_config
        self.alphabet = alphabet
        self.tag = tag
        self.tag_range_m = tag_range_m
        self.tag_velocity_m_s = tag_velocity_m_s
        self.clutter = clutter or Clutter()
        self.fields = fields or PacketFields()
        self.encoder = DownlinkEncoder(radar_config=radar_config, alphabet=alphabet)
        self.radar = FMCWRadar(radar_config)
        if downlink_repeats is None:
            downlink_repeats = required_downlink_repeats(
                tag.modulator.modulation_rate_hz, alphabet.chirp_period_s
            )
        if downlink_repeats < 1:
            raise SimulationError(f"downlink_repeats must be >= 1, got {downlink_repeats}")
        self.downlink_repeats = downlink_repeats
        self.downlink_budget = downlink_budget or DownlinkBudget(
            tx_power_dbm=radar_config.tx_power_dbm,
            radar_antenna=radar_config.antenna,
            frequency_hz=radar_config.center_frequency_hz,
        )
        self.uplink_decoder = UplinkDecoder(tag.modulator)
        self.localizer = TagLocalizer(
            [tag.modulator.modulation_rate_hz, tag.modulator.effective_fsk_rate_1_hz],
            coherence_chirps=tag.modulator.chirps_per_bit,
        )
        self.impairments = impairments
        if if_confidence_threshold is not None and if_confidence_threshold <= 0:
            raise SimulationError(
                f"if_confidence_threshold must be positive, got {if_confidence_threshold}"
            )
        self.if_confidence_threshold = if_confidence_threshold

    # ------------------------------------------------------------------ frame

    def build_frame(
        self, downlink_bits: np.ndarray, uplink_bits: np.ndarray
    ) -> tuple[FrameSchedule, DownlinkPacket]:
        """Construct the integrated frame for one exchange.

        Payload symbols are repeated ``downlink_repeats`` times; the frame
        is padded with sensing chirps until it can carry every uplink bit.
        """
        packet = DownlinkPacket.from_bits(
            self.alphabet, np.asarray(downlink_bits, dtype=np.uint8), fields=self.fields
        )
        symbols = packet.payload_symbols()
        durations = [self.alphabet.header_duration_s] * self.fields.header_repeats
        durations += [self.alphabet.sync_duration_s] * self.fields.sync_repeats
        slot_symbols: "list[int | None]" = [None] * self.fields.preamble_length
        for symbol in symbols:
            for _ in range(self.downlink_repeats):
                durations.append(self.alphabet.data_symbol_duration_s(symbol))
                slot_symbols.append(symbol)
        # Pad with sensing chirps so the uplink payload fits.
        uplink = np.asarray(uplink_bits, dtype=np.uint8)
        needed = uplink.size * self.tag.modulator.chirps_per_bit
        while len(durations) < needed:
            durations.append(self.alphabet.header_duration_s)
            slot_symbols.append(None)
        chirps = [
            self.encoder._chirp_for_duration(duration) for duration in durations
        ]
        frame = FrameSchedule.from_chirps(
            chirps, self.alphabet.chirp_period_s, symbols=slot_symbols
        )
        return frame, packet

    def _tag_scatterer(self, states: np.ndarray) -> Scatterer:
        schedule = self.tag.amplitude_schedule_for_states(
            states, self.radar_config.center_frequency_hz
        )
        return Scatterer(
            range_m=self.tag_range_m,
            rcs_m2=self.tag.reflective_rcs_m2(self.radar_config.center_frequency_hz),
            velocity_m_s=self.tag_velocity_m_s,
            amplitude_schedule=schedule,
        )

    def _clutter_scatterers(self) -> "list[Scatterer]":
        return [
            Scatterer(range_m=r.range_m, rcs_m2=r.rcs_m2, angle_deg=r.angle_deg)
            for r in self.clutter.reflectors
        ]

    # ------------------------------------------------------------------ run

    def _active_impairments(self):
        """The impairment spec when it actually perturbs anything."""
        spec = self.impairments
        if spec is not None and spec.active:
            return spec
        return None

    def run_frame(
        self,
        downlink_bits: np.ndarray,
        uplink_bits: np.ndarray,
        *,
        rng: int | np.random.Generator | None = None,
        decode_uplink: bool = True,
        localize: bool = True,
        frame_index: int | None = None,
    ) -> IsacFrameResult:
        """Simulate one full integrated exchange.

        Radar transmits the frame; the tag simultaneously modulates
        (uplink) and decodes the chirps it hears (downlink); the radar
        decodes the backscatter and localizes the tag.

        Radar-side decode failures (:class:`SyncError`,
        :class:`DecodingError`, :class:`DetectionError`) never escape:
        each is recorded as a :class:`FrameErasure` on the result and the
        corresponding output stays ``None`` — the BER properties then
        score the erased bits as errors.  ``frame_index`` (optional) tags
        those erasure records for session-level accounting.
        """
        generator = resolve_rng(rng)
        frame, packet = self.build_frame(downlink_bits, uplink_bits)
        uplink = np.asarray(uplink_bits, dtype=np.uint8)
        impair = self._active_impairments()

        chirp_times = np.array([slot.start_time_s for slot in frame.slots])
        modulator = self.tag.modulator
        clock_offset_ppm = 0.0
        if impair is not None:
            # The tag's drifted oscillator shifts its switching rates; the
            # radar keeps decoding against the nominal rates.
            clock_offset_ppm = impair.clock_offset_ppm()
            modulator = modulator.with_clock_offset(clock_offset_ppm)
        states = modulator.states_for_bits(uplink, chirp_times)

        # --- radar receive path -------------------------------------------------
        scatterers = self._clutter_scatterers() + [self._tag_scatterer(states)]
        if_frame = self.radar.receive_frame(frame, scatterers, rng=generator)
        if impair is not None:
            if_frame = impair.apply_to_if_frame(if_frame, rng=generator)

        # --- tag receive path ---------------------------------------------------
        frontend = self.tag.frontend(self.downlink_budget)
        capture = frontend.capture(
            frame,
            self.tag_range_m,
            rng=generator,
            absorptive_slots=~states,
        )
        if impair is not None:
            capture = impair.apply_to_capture(capture, rng=generator)
        decoded_symbols = self._decode_downlink_with_repeats(
            capture, packet, states, clock_offset_ppm=clock_offset_ppm
        )
        decoded_bits = (
            np.concatenate(
                [self.alphabet.bits_for_symbol(s) for s in decoded_symbols]
            )
            if decoded_symbols
            else np.empty(0, dtype=np.uint8)
        )

        # --- radar processing ---------------------------------------------------
        erasures: "list[FrameErasure]" = []

        def record(stage: str, error: Exception) -> None:
            erasures.append(
                FrameErasure(
                    stage=stage,
                    error=type(error).__name__,
                    message=str(error),
                    frame_index=(
                        getattr(error, "frame_index", None)
                        if getattr(error, "frame_index", None) is not None
                        else frame_index
                    ),
                    symbol_index=getattr(error, "symbol_index", None),
                )
            )
            if _obs_runtime._enabled:
                obs.inc("impair.erasures")
                obs.inc(f"impair.erasures.{stage}")
                obs.log(
                    "isac.frame.erasure",
                    stage=stage,
                    error=type(error).__name__,
                    frame=frame_index,
                )

        correction = align_profiles_to_common_grid(
            if_frame, confidence_threshold=self.if_confidence_threshold
        )
        uplink_result: UplinkResult | None = None
        localization: LocalizationResult | None = None
        velocity: float | None = None
        if decode_uplink:
            try:
                uplink_result = self.uplink_decoder.decode(
                    if_frame, num_bits=uplink.size, correction=correction
                )
            except (SyncError, DecodingError, DetectionError) as error:
                record("uplink", error)
        if localize:
            try:
                localization = self.localizer.localize(if_frame, correction=correction)
                from repro.radar.doppler_processing import estimate_velocity

                # The tag's 50%-duty switching leaves half its mean amplitude
                # in a line at the Doppler frequency itself (the square wave's
                # DC component), which outweighs the +/- f_mod sidebands — so
                # the plain spectral peak IS the tag's Doppler.  Keep the DC
                # line (a static tag should read ~0 m/s).
                velocity = estimate_velocity(
                    correction.aligned,
                    localization.detection.range_bin,
                    self.alphabet.chirp_period_s,
                    self.radar_config.center_frequency_hz,
                    remove_dc=False,
                )
            except (SyncError, DecodingError, DetectionError) as error:
                record("localization", error)

        return IsacFrameResult(
            frame=frame,
            if_frame=if_frame,
            downlink_bits_sent=np.asarray(downlink_bits, dtype=np.uint8),
            downlink_bits_decoded=decoded_bits,
            downlink_symbols_sent=packet.payload_symbols(),
            downlink_symbols_decoded=decoded_symbols,
            uplink_bits_sent=uplink,
            uplink=uplink_result,
            localization=localization,
            tag_states=states,
            estimated_velocity_m_s=velocity,
            erasures=tuple(erasures),
            if_fallback_chirps=correction.fallback_chirps,
        )

    def _decode_downlink_with_repeats(
        self,
        capture,
        packet: DownlinkPacket,
        states: np.ndarray,
        *,
        clock_offset_ppm: float = 0.0,
    ) -> list[int]:
        """Combine repeated symbol slots the tag actually heard.

        For each repeat group the per-symbol matched-filter scores of every
        absorptive (heard) slot are summed; the best total wins.  A fully
        missed group decodes as symbol 0 (an erasure scored as errors).
        The tag's decoder shares the drifted oscillator
        (``clock_offset_ppm``), skewing its hypothesis beat grid.
        """
        decoder = self.tag.decoder(
            self.alphabet, fields=self.fields, clock_offset_ppm=clock_offset_ppm
        )
        fs = capture.sample_rate_hz
        symbols: list[int] = []
        start = self.fields.preamble_length
        num_symbols = packet.num_payload_symbols
        num_data = self.alphabet.num_data_symbols
        for group in range(num_symbols):
            totals = np.zeros(num_data)
            heard = 0
            for repeat in range(self.downlink_repeats):
                slot_index = start + group * self.downlink_repeats + repeat
                if slot_index >= len(capture.frame):
                    break
                if states[slot_index]:
                    continue  # reflective: decoder disconnected
                samples = capture.slot_samples(slot_index)
                if samples.size < 4:
                    continue
                for kind, symbol, _, score in decoder.score_slot(samples, fs):
                    if kind == "data":
                        totals[symbol] += score
                heard += 1
            symbols.append(int(np.argmax(totals)) if heard else 0)
        return symbols

    # ------------------------------------------------------------------ sensing

    def sensing_range_profile(
        self, if_frame: IFFrame
    ) -> tuple[np.ndarray, np.ndarray]:
        """Mean aligned range profile (the radar's primary sensing output).

        Returns ``(range_grid_m, mean_magnitude)``; clutter reflectors show
        as stable peaks regardless of the communication payload — the
        transparency property Fig. 7(b) illustrates.
        """
        correction = align_profiles_to_common_grid(if_frame)
        return correction.range_grid_m, np.abs(correction.aligned).mean(axis=0)
