"""Fault-injection tests for the fault-tolerant executor.

The determinism contract says ``workers=N`` is bit-identical to
``workers=1``; these tests prove the contract *survives faults*.  Each
scenario injects a failure into a worker chunk — an exception, a hard
``os._exit``, a stuck sleep — and asserts that (a) the run recovers,
(b) the recovered values are bit-identical to the serial baseline, and
(c) the recovery is visible in the :class:`ExecutionReport` fault
counters (and, for sweeps, in ``metadata["_execution"]["faults"]``).

Injection helpers are module-level (picklable) and use a flag file to
fail exactly once: the flag is written *and fsynced* before the crash so
the retry — possibly in a freshly spawned worker — observes it.
"""

import os
import time

import pytest

from repro.errors import ChunkFailure, ExecutorError
from repro.sim.executor import ExecutionPlan, map_trials, strip_execution
from repro.sim.sweep import sweep


def _values(spec, indices):
    return [float(spec.stream(index).uniform()) for index in indices]


def _echo_chunk(payload, spec, indices):
    return _values(spec, indices)


def _mark_flag(flag_path):
    """Create the fail-once flag durably before crashing."""
    with open(flag_path, "w") as handle:
        handle.write("tripped")
        handle.flush()
        os.fsync(handle.fileno())


def _crash_once_chunk(payload, spec, indices):
    """Crash the first time the chosen trial index is dispatched.

    ``mode="raise"`` raises inside the worker (chunk retried in place);
    ``mode="exit"`` kills the worker process outright, breaking the pool
    (pool rebuilt, chunk re-dispatched).
    """
    flag_path, crash_index, mode = payload
    if crash_index in indices and not os.path.exists(flag_path):
        _mark_flag(flag_path)
        if mode == "raise":
            raise RuntimeError(f"injected fault at trial {crash_index}")
        os._exit(17)
    return _values(spec, indices)


def _always_raise_chunk(payload, spec, indices):
    """Deterministic failure: the chunk owning ``payload`` never succeeds."""
    if payload in indices:
        raise ValueError(f"permanent fault at trial {payload}")
    return _values(spec, indices)


def _worker_only_raise_chunk(payload, spec, indices):
    """Fail in pool workers but succeed in the parent (serial recovery)."""
    import multiprocessing

    if multiprocessing.parent_process() is not None:
        raise RuntimeError("worker-only fault")
    return _values(spec, indices)


def _slow_once_chunk(payload, spec, indices):
    """Stall far past the chunk deadline on the first dispatch only."""
    flag_path, slow_index = payload
    if slow_index in indices and not os.path.exists(flag_path):
        _mark_flag(flag_path)
        time.sleep(60.0)
    return _values(spec, indices)


class _CrashOnceEvaluate:
    """Picklable sweep evaluate that hard-kills its worker exactly once."""

    def __init__(self, flag_path):
        self.flag_path = flag_path

    def __call__(self, parameter, stream):
        import multiprocessing

        in_worker = multiprocessing.parent_process() is not None
        if in_worker and not os.path.exists(self.flag_path):
            _mark_flag(self.flag_path)
            os._exit(17)
        return float(parameter + stream.uniform())


class TestFaultRecovery:
    def test_worker_raise_is_retried_bit_exact(self, tmp_path):
        serial, _ = map_trials(_echo_chunk, None, 16, rng=9)
        flag = tmp_path / "raise.flag"
        values, report = map_trials(
            _crash_once_chunk,
            (str(flag), 7, "raise"),
            16,
            rng=9,
            plan=ExecutionPlan(workers=2, chunk_size=4),
        )
        assert values == serial
        assert report.backend == "process"
        assert report.retries >= 1
        assert any(event["kind"] == "raise" for event in report.fault_events)
        assert flag.exists()

    def test_worker_hard_exit_rebuilds_pool_bit_exact(self, tmp_path):
        serial, _ = map_trials(_echo_chunk, None, 16, rng=9)
        flag = tmp_path / "exit.flag"
        values, report = map_trials(
            _crash_once_chunk,
            (str(flag), 3, "exit"),
            16,
            rng=9,
            plan=ExecutionPlan(workers=2, chunk_size=4),
        )
        assert values == serial
        assert report.pool_rebuilds >= 1
        assert flag.exists()

    def test_retry_exhaustion_raises_with_failing_indices(self):
        with pytest.raises(ExecutorError) as excinfo:
            map_trials(
                _always_raise_chunk,
                5,
                12,
                rng=0,
                plan=ExecutionPlan(workers=2, chunk_size=3, max_retries=1),
            )
        error = excinfo.value
        # Trial 5 lives in chunk [3, 4, 5]; the whole chunk is reported.
        assert error.failing_indices == [3, 4, 5]
        assert all(isinstance(f, ChunkFailure) for f in error.failures)
        assert all(f.attempts == 2 for f in error.failures)  # 1 + max_retries
        assert "5" in str(error)

    def test_on_failure_serial_recovers_in_parent(self):
        serial, _ = map_trials(_echo_chunk, None, 10, rng=9)
        values, report = map_trials(
            _worker_only_raise_chunk,
            None,
            10,
            rng=9,
            plan=ExecutionPlan(
                workers=2, chunk_size=5, max_retries=0, on_failure="serial"
            ),
        )
        assert values == serial
        assert report.serial_recovered_chunks == 2
        assert any(event["kind"] == "raise" for event in report.fault_events)

    def test_chunk_timeout_recovers_bit_exact(self, tmp_path):
        serial, _ = map_trials(_echo_chunk, None, 8, rng=9)
        flag = tmp_path / "slow.flag"
        values, report = map_trials(
            _slow_once_chunk,
            (str(flag), 2),
            8,
            rng=9,
            plan=ExecutionPlan(workers=2, chunk_size=2, chunk_timeout_s=3.0),
        )
        assert values == serial
        assert report.timeouts >= 1
        assert report.pool_rebuilds >= 1
        assert any(event["kind"] == "timeout" for event in report.fault_events)

    def test_fault_counters_in_report_metadata(self, tmp_path):
        flag = tmp_path / "meta.flag"
        _, report = map_trials(
            _crash_once_chunk,
            (str(flag), 0, "raise"),
            8,
            rng=3,
            plan=ExecutionPlan(workers=2, chunk_size=4),
        )
        faults = report.as_metadata()["faults"]
        assert faults["retries"] == report.retries
        assert faults["pool_rebuilds"] == report.pool_rebuilds
        assert faults["timeouts"] == report.timeouts
        assert faults["serial_recovered_chunks"] == report.serial_recovered_chunks
        assert faults["events"] == list(report.fault_events)
        assert faults["retries"] >= 1

    def test_clean_run_reports_zero_faults(self):
        _, report = map_trials(
            _echo_chunk, None, 8, rng=0, plan=ExecutionPlan(workers=2)
        )
        assert report.retries == 0
        assert report.pool_rebuilds == 0
        assert report.timeouts == 0
        assert report.serial_recovered_chunks == 0
        assert report.fault_events == []


class TestSweepFaultRecovery:
    def test_mid_sweep_worker_kill_bit_identical_to_serial(self, tmp_path):
        """The acceptance test: a worker killed mid-sweep loses nothing."""
        params = [float(p) for p in range(12)]
        flag = tmp_path / "sweep.flag"
        baseline = sweep(
            "baseline",
            params,
            _CrashOnceEvaluate(str(tmp_path / "unused.flag")),
            rng=7,
            execution=ExecutionPlan(workers=1),
        )
        recovered = sweep(
            "recovered",
            params,
            _CrashOnceEvaluate(str(flag)),
            rng=7,
            execution=ExecutionPlan(workers=2, chunk_size=3),
        )
        assert recovered.values == baseline.values
        faults = recovered.metadata["_execution"]["faults"]
        assert faults["pool_rebuilds"] >= 1
        assert flag.exists()
        # The volatile execution channel strips away cleanly.
        assert strip_execution(recovered.metadata) == {}


class TestExecutorErrorShape:
    def test_chunk_failure_as_dict_round_trips_fields(self):
        failure = ChunkFailure(
            chunk_index=2,
            indices=(6, 7, 8),
            attempts=3,
            kind="raise",
            error="RuntimeError: boom",
        )
        assert failure.as_dict() == {
            "chunk_index": 2,
            "indices": [6, 7, 8],
            "attempts": 3,
            "kind": "raise",
            "error": "RuntimeError: boom",
        }

    def test_executor_error_aggregates_indices_sorted_unique(self):
        error = ExecutorError(
            [
                ChunkFailure(1, (4, 5), 2, "raise", "E: x"),
                ChunkFailure(0, (0, 1), 2, "timeout", "E: y"),
            ]
        )
        assert error.failing_indices == [0, 1, 4, 5]
        assert "timeout" in str(error) or "raise" in str(error)
