"""Property-based tests: link budgets, propagation, IF correction, modulator."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.channel.link_budget import DownlinkBudget, UplinkBudget
from repro.channel.propagation import (
    free_space_path_loss_db,
    radar_received_power_dbm,
)
from repro.tag.modulator import ModulationScheme, UplinkModulator

distances = st.floats(min_value=0.3, max_value=50.0)
frequencies = st.floats(min_value=1e9, max_value=100e9)


class TestPropagationProperties:
    @given(distances, distances, frequencies)
    def test_path_loss_monotone_in_distance(self, d1, d2, freq):
        assume(abs(d1 - d2) > 1e-6)
        near, far = sorted((d1, d2))
        assert free_space_path_loss_db(near, freq) < free_space_path_loss_db(far, freq)

    @given(distances, frequencies)
    def test_path_loss_slope_exactly_20db_per_decade(self, d, freq):
        assert free_space_path_loss_db(10 * d, freq) - free_space_path_loss_db(
            d, freq
        ) == pytest.approx(20.0, abs=1e-6)

    @given(distances, frequencies, st.floats(min_value=1e-6, max_value=10.0))
    def test_radar_equation_slope_40db_per_decade(self, d, freq, rcs):
        near = radar_received_power_dbm(7, 20, 20, d, freq, rcs)
        far = radar_received_power_dbm(7, 20, 20, 10 * d, freq, rcs)
        assert near - far == pytest.approx(40.0, abs=1e-6)


class TestBudgetProperties:
    @settings(max_examples=40, deadline=None)
    @given(distances, distances)
    def test_downlink_video_snr_monotone(self, d1, d2):
        assume(abs(d1 - d2) > 1e-3)
        budget = DownlinkBudget()
        near, far = sorted((d1, d2))
        assert budget.video_snr_db(near) > budget.video_snr_db(far)

    @settings(max_examples=40, deadline=None)
    @given(distances, st.floats(min_value=20e-6, max_value=200e-6))
    def test_detection_snr_at_least_video_snr(self, d, duration):
        budget = DownlinkBudget()
        assert budget.detection_snr_db(d, duration) >= budget.video_snr_db(d) - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(distances, distances)
    def test_uplink_snr_monotone_even_with_ceiling(self, d1, d2):
        assume(abs(d1 - d2) > 1e-3)
        budget = UplinkBudget()
        near, far = sorted((d1, d2))
        assert budget.snr_db(near) > budget.snr_db(far)

    @settings(max_examples=40, deadline=None)
    @given(distances)
    def test_ceiling_bounds_snr(self, d):
        budget = UplinkBudget(self_interference_ceiling_db=20.0)
        assert budget.snr_db(d) < 20.0

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=-20.0, max_value=30.0))
    def test_distance_for_video_snr_is_inverse(self, target):
        budget = DownlinkBudget()
        distance = budget.distance_for_video_snr(target)
        assume(0.01 < distance < 1000)
        assert budget.video_snr_db(distance) == pytest.approx(target, abs=0.01)


class TestModulatorProperties:
    rates = st.floats(min_value=100.0, max_value=4000.0)

    @settings(max_examples=40, deadline=None)
    @given(rates, st.integers(min_value=1, max_value=8), st.integers(0, 2**8 - 1))
    def test_states_length_and_type(self, rate, num_bits, pattern):
        assume(rate * 1.5 < 1.0 / (2 * 120e-6))  # FSK rate-1 under Nyquist
        modulator = UplinkModulator(
            modulation_rate_hz=rate,
            chirp_period_s=120e-6,
            chirps_per_bit=16,
            scheme=ModulationScheme.FSK,
        )
        bits = np.array([(pattern >> k) & 1 for k in range(num_bits)], dtype=np.uint8)
        times = np.arange(num_bits * 16 + 5) * 120e-6
        states = modulator.states_for_bits(bits, times)
        assert states.size == times.size
        assert states.dtype == bool
        # Trailing idle slots rest reflective.
        assert np.all(states[num_bits * 16 :])

    @settings(max_examples=30, deadline=None)
    @given(rates)
    def test_fsk_always_toggles_within_bits(self, rate):
        assume(rate * 1.5 < 1.0 / (2 * 120e-6))
        assume(rate > 800.0)  # at least ~one transition per 16-slot bit
        modulator = UplinkModulator(
            modulation_rate_hz=rate,
            chirp_period_s=120e-6,
            chirps_per_bit=16,
            scheme=ModulationScheme.FSK,
        )
        times = np.arange(32) * 120e-6
        states = modulator.states_for_bits(np.array([0, 1]), times)
        for block in (states[:16], states[16:]):
            assert 0 < block.sum() < block.size

    @settings(max_examples=30, deadline=None)
    @given(rates, st.integers(min_value=50, max_value=300))
    def test_beacon_duty_near_half(self, rate, num_slots):
        assume(rate < 1.0 / (2 * 120e-6))
        # Need several full modulation cycles for the duty to average out.
        assume(num_slots * 120e-6 * rate >= 3.0)
        modulator = UplinkModulator(
            modulation_rate_hz=rate, chirp_period_s=120e-6, chirps_per_bit=8
        )
        times = np.arange(num_slots) * 120e-6
        duty = modulator.beacon_states(times).mean()
        # Slot-sampled square wave duty within a coarse band around 50%.
        assert 0.2 < duty < 0.8


class TestIfCorrectionProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.sampled_from([20e-6, 40e-6, 60e-6, 80e-6, 96e-6]),
            min_size=4,
            max_size=10,
        ),
        st.floats(min_value=1.0, max_value=6.0),
    )
    def test_static_target_stays_in_one_cell(self, durations, target_range):
        from repro.radar.config import XBAND_9GHZ
        from repro.radar.fmcw import FMCWRadar, Scatterer
        from repro.radar.if_correction import align_profiles_to_common_grid
        from repro.waveform.frame import FrameSchedule

        chirps = [XBAND_9GHZ.chirp(d) for d in durations]
        frame = FrameSchedule.from_chirps(chirps, 120e-6)
        target = Scatterer(range_m=target_range, rcs_m2=1e-2, gain_jitter_std=0.0)
        if_frame = FMCWRadar(XBAND_9GHZ).receive_frame(frame, [target], add_noise=False)
        result = align_profiles_to_common_grid(if_frame)
        peaks = result.per_chirp_peak_ranges_m(min_range_m=0.5)
        assert np.ptp(peaks) < 0.15
        assert np.median(peaks) == pytest.approx(target_range, abs=0.15)

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=1.0, max_value=6.0))
    def test_alignment_preserves_peak_amplitude_across_slopes(self, target_range):
        from repro.radar.config import XBAND_9GHZ
        from repro.radar.fmcw import FMCWRadar, Scatterer
        from repro.radar.if_correction import align_profiles_to_common_grid
        from repro.waveform.frame import FrameSchedule

        chirps = [XBAND_9GHZ.chirp(d) for d in (30e-6, 60e-6, 90e-6)]
        frame = FrameSchedule.from_chirps(chirps, 120e-6)
        target = Scatterer(range_m=target_range, rcs_m2=1e-2, gain_jitter_std=0.0)
        if_frame = FMCWRadar(XBAND_9GHZ).receive_frame(frame, [target], add_noise=False)
        result = align_profiles_to_common_grid(if_frame)
        peak_amplitudes = np.abs(result.aligned).max(axis=1)
        # Same target, same normalization: amplitudes agree within ~20%.
        assert peak_amplitudes.max() / peak_amplitudes.min() < 1.25
