"""Ablation A1 — analytic vs circuit-level tag frontend.

DESIGN.md commits to two fidelity levels: the fast analytic frontend (the
Eq.-9 tone) used by every Monte-Carlo bench, and the sampled circuit chain
(split -> delay lines -> combine -> square-law -> RC -> ADC).  This bench
demonstrates they agree on the quantity the whole system hangs on — the
beat frequency per chirp slope — across the alphabet's duration range, and
that a decoder fed by the circuit output makes the same ML decisions.
"""

import numpy as np

from conftest import emit
from repro.components.adc import ADC
from repro.components.delay_line import CoaxialDelayLine
from repro.components.envelope_detector import EnvelopeDetector
from repro.sim.results import format_table
from repro.tag.frontend import SampledTagFrontend
from repro.utils.dsp import dominant_frequency, goertzel_power_many
from repro.waveform.parameters import ChirpParameters

# Scaled configuration: the circuit runs at laptop-feasible sample rates;
# Eq. 11 physics is preserved because only B * dT matters.
BANDWIDTH_HZ = 5e6
DELTA_T_S = 2e-6
DURATIONS_S = [40e-6, 70e-6, 100e-6, 140e-6, 200e-6]


def build_frontend():
    short = CoaxialDelayLine(length_m=0.1, loss_db_per_m_at_1ghz=0.0)
    long = CoaxialDelayLine(
        length_m=0.1 + 0.7 * 299792458.0 * DELTA_T_S, loss_db_per_m_at_1ghz=0.0
    )
    return SampledTagFrontend(
        line_short=short,
        line_long=long,
        detector=EnvelopeDetector(lowpass_cutoff_hz=400e3, output_noise_v_per_rt_hz=1e-12),
        adc=ADC(sample_rate_hz=2e6),
        baseband_sample_rate_hz=25e6,
    )


def compare_frontends():
    frontend = build_frontend()
    rows = []
    candidate_beats = np.array(
        [BANDWIDTH_HZ * DELTA_T_S / duration for duration in DURATIONS_S]
    )
    correct_decisions = 0
    for index, duration in enumerate(DURATIONS_S):
        chirp = ChirpParameters(
            start_frequency_hz=100e6, bandwidth_hz=BANDWIDTH_HZ, duration_s=duration
        )
        analytic_beat = chirp.slope_hz_per_s * DELTA_T_S
        capture = frontend.capture_chirp(chirp, input_amplitude_v=0.02, rng=index)
        circuit_beat = dominant_frequency(
            capture.samples, capture.sample_rate_hz, min_frequency_hz=5e3
        )
        # ML decision over the candidate set, fed by the circuit output.
        samples = capture.samples - capture.samples.mean()
        powers = goertzel_power_many(samples, candidate_beats, capture.sample_rate_hz)
        decided = int(np.argmax(powers))
        correct_decisions += decided == index
        rows.append(
            (
                duration,
                analytic_beat,
                circuit_beat,
                abs(circuit_beat - analytic_beat) / analytic_beat,
                decided == index,
            )
        )
    return rows, correct_decisions


def test_ablation_frontend_equivalence(benchmark):
    rows, correct = benchmark.pedantic(compare_frontends, rounds=1, iterations=1)
    table = format_table(
        [
            "T_chirp (us)",
            "analytic beat (kHz)",
            "circuit beat (kHz)",
            "relative error",
            "ML decision",
        ],
        [
            [
                f"{duration * 1e6:.0f}",
                f"{analytic / 1e3:.2f}",
                f"{circuit / 1e3:.2f}",
                f"{error:.2e}",
                "correct" if ok else "WRONG",
            ]
            for duration, analytic, circuit, error, ok in rows
        ],
    )
    emit("ablation_frontend", table)

    # The two fidelity levels agree to better than 1% on every slope, and
    # the circuit output decodes identically.
    assert all(error < 0.01 for *_, error, _ok in rows)
    assert correct == len(DURATIONS_S)
