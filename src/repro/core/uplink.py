"""Radar-side uplink decoding (paper Section 3.3).

The tag's switch toggles per chirp, so after IF correction the tag's range
cell carries a square-wave amplitude modulation in slow time.  The decoder:

1. aligns the (possibly mixed-slope) frame onto a common range grid,
2. subtracts the static background (the frame's first chirp, per the
   paper — generalized here to the per-cell slow-time mean, which equals
   the first-chirp profile for static scenes but tolerates noise),
3. locates the tag cell by matched-filtering each cell's slow-time
   spectrum against the tag's modulation signature,
4. slices the tag cell's slow-time series into bit blocks and decides each
   bit by tone detection (OOK) or tone comparison (FSK).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecodingError
from repro.radar.detection import TagDetection, detect_modulated_tag
from repro.radar.fmcw import IFFrame
from repro.radar.if_correction import IFCorrectionResult, align_profiles_to_common_grid
from repro.tag.modulator import ModulationScheme, UplinkModulator
from repro.utils.dsp import goertzel_power_many


@dataclass
class UplinkResult:
    """Decoded uplink data plus the detection that anchored it."""

    bits: np.ndarray
    detection: TagDetection
    bit_scores: np.ndarray
    correction: IFCorrectionResult


class UplinkDecoder:
    """Decodes tag backscatter bits from radar IF frames.

    Parameters
    ----------
    modulator:
        The tag's uplink modulation configuration (shared knowledge: the
        radar assigned it over the downlink).
    min_range_m / max_range_m:
        Search window for the tag.
    ook_threshold_db:
        Tone-to-floor margin above which an OOK block reads as 1.
    """

    def __init__(
        self,
        modulator: UplinkModulator,
        *,
        min_range_m: float = 0.3,
        max_range_m: float | None = None,
        ook_threshold_db: float = 10.0,
    ) -> None:
        self.modulator = modulator
        self.min_range_m = min_range_m
        self.max_range_m = max_range_m
        self.ook_threshold_db = ook_threshold_db

    def _blocks(self, series: np.ndarray) -> np.ndarray:
        per_bit = self.modulator.chirps_per_bit
        num_bits = series.size // per_bit
        if num_bits < 1:
            raise DecodingError(
                f"{series.size} chirps cannot carry a {per_bit}-chirp bit"
            )
        return series[: num_bits * per_bit].reshape(num_bits, per_bit)

    def _tone_power(self, block: np.ndarray, rate_hz: float) -> float:
        slow_fs = 1.0 / self.modulator.chirp_period_s
        return float(
            goertzel_power_many(block - block.mean(), np.array([rate_hz]), slow_fs)[0]
        )

    def _noise_floor(self, block: np.ndarray) -> float:
        """Median off-tone power: probe frequencies away from the signature.

        Probes avoid the fundamental and its odd harmonics; the median over
        many probes is robust to a single probe landing in a leakage skirt.
        """
        slow_fs = 1.0 / self.modulator.chirp_period_s
        nyquist = slow_fs / 2.0
        base = self.modulator.modulation_rate_hz
        bin_width = slow_fs / max(block.size, 1)
        probes = []
        for factor in (0.23, 0.31, 0.43, 0.57, 0.66, 0.79, 0.87, 1.34, 1.62):
            candidate = factor * base
            if not 0 < candidate < nyquist:
                continue
            # Skip probes within two analysis bins of any odd harmonic.
            harmonic_distance = min(
                abs(candidate - k * base) for k in (1, 3, 5)
            )
            if harmonic_distance < 2.0 * bin_width:
                continue
            probes.append(candidate)
        if not probes:
            probes = [0.4 * nyquist]
        powers = goertzel_power_many(block - block.mean(), np.array(probes), slow_fs)
        return float(np.median(powers)) + 1e-30

    def decode(
        self,
        if_frame: IFFrame,
        *,
        num_bits: int | None = None,
        correction: IFCorrectionResult | None = None,
    ) -> UplinkResult:
        """Full uplink receive chain for one frame.

        Parameters
        ----------
        num_bits:
            Expected bit count (default: as many whole blocks as fit).
        correction:
            Reuse an existing IF-correction result (the ISAC session
            computes it once for sensing, uplink, and localization).
        """
        if correction is None:
            correction = align_profiles_to_common_grid(if_frame)
        detection = self._detect(if_frame, correction)
        series = np.abs(correction.aligned[:, detection.range_bin])
        blocks = self._blocks(series)
        if num_bits is not None:
            if num_bits > blocks.shape[0]:
                raise DecodingError(
                    f"requested {num_bits} bits but the frame carries only "
                    f"{blocks.shape[0]} blocks"
                )
            blocks = blocks[:num_bits]

        bits = np.empty(blocks.shape[0], dtype=np.uint8)
        scores = np.empty(blocks.shape[0])
        threshold = 10.0 ** (self.ook_threshold_db / 10.0)
        for index, block in enumerate(blocks):
            if self.modulator.scheme is ModulationScheme.OOK:
                tone = self._tone_power(block, self.modulator.modulation_rate_hz)
                floor = self._noise_floor(block)
                ratio = tone / floor
                bits[index] = 1 if ratio > threshold else 0
                scores[index] = ratio
            else:
                power_0 = self._tone_power(block, self.modulator.modulation_rate_hz)
                power_1 = self._tone_power(block, self.modulator.effective_fsk_rate_1_hz)
                bits[index] = 1 if power_1 > power_0 else 0
                scores[index] = power_1 / (power_0 + 1e-30)
        return UplinkResult(
            bits=bits, detection=detection, bit_scores=scores, correction=correction
        )

    def _detect(self, if_frame: IFFrame, correction: IFCorrectionResult) -> TagDetection:
        """Locate the tag from its total modulated energy.

        An FSK tag splits its airtime between two rates, so detection uses
        the union of both signatures — otherwise a data pattern dominated
        by one rate would dilute the matched filter and let strong clutter
        residue steal the detection.
        """
        period = if_frame.frame.uniform_period_s()
        rates = [self.modulator.modulation_rate_hz]
        if self.modulator.scheme is ModulationScheme.FSK:
            rates.append(self.modulator.effective_fsk_rate_1_hz)
        return detect_modulated_tag(
            correction.aligned,
            correction.range_grid_m,
            period,
            rates,
            min_range_m=self.min_range_m,
            coherence_chirps=self.modulator.chirps_per_bit,
        )

    def measure_snr_db(self, if_frame: IFFrame) -> float:
        """Uplink signature SNR at the tag cell (the Fig. 15 metric).

        Ratio of the tone power at the detected cell to the off-template
        spectral floor of that cell.
        """
        correction = align_profiles_to_common_grid(if_frame)
        return self._detect(if_frame, correction).snr_db
