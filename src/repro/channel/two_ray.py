"""Two-ray ground/floor reflection: indoor multipath on the downlink.

The paper evaluates "in an indoor office space with substantial multipath
propagation".  Beyond discrete clutter, the dominant structured multipath
indoors is the floor/ceiling bounce: a second ray whose path-length
difference produces constructive/destructive interference that RIPPLES the
received power versus distance — BER-vs-distance curves measured in rooms
wiggle rather than fall monotonically.

The model: direct ray + one specular reflection off a plane at height
``h`` below both antennas, with reflection coefficient ``gamma`` (≈ −0.7
for typical floors at low grazing angles).  `gain_factor_db(d)` is the
power correction to apply on top of free-space; `TwoRayDownlinkBudget`
wraps a :class:`~repro.channel.link_budget.DownlinkBudget` with it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.link_budget import DownlinkBudget
from repro.constants import SPEED_OF_LIGHT
from repro.errors import LinkBudgetError
from repro.utils.validation import ensure_in_range, ensure_positive


@dataclass(frozen=True)
class TwoRayGeometry:
    """Geometry of the direct + floor-bounce pair.

    Parameters
    ----------
    tx_height_m / rx_height_m:
        Antenna heights above the reflecting plane.
    reflection_coefficient:
        Complex amplitude coefficient of the bounce (real negative for a
        dielectric floor near grazing incidence).
    """

    tx_height_m: float = 1.0
    rx_height_m: float = 1.0
    reflection_coefficient: complex = -0.7

    def __post_init__(self) -> None:
        ensure_positive("tx_height_m", self.tx_height_m)
        ensure_positive("rx_height_m", self.rx_height_m)
        magnitude = abs(self.reflection_coefficient)
        ensure_in_range("abs(reflection_coefficient)", magnitude, 0.0, 1.0)

    def path_lengths_m(self, ground_distance_m: float) -> tuple[float, float]:
        """(direct, reflected) path lengths for a horizontal separation."""
        if ground_distance_m <= 0:
            raise LinkBudgetError(
                f"ground_distance_m must be positive, got {ground_distance_m!r}"
            )
        height_difference = self.tx_height_m - self.rx_height_m
        height_sum = self.tx_height_m + self.rx_height_m
        direct = np.hypot(ground_distance_m, height_difference)
        reflected = np.hypot(ground_distance_m, height_sum)
        return float(direct), float(reflected)

    def gain_factor(self, ground_distance_m: float, frequency_hz: float) -> float:
        """Linear power factor relative to the free-space direct ray.

        ``|1 + gamma (d_dir/d_ref) e^{-j k (d_ref - d_dir)}|^2`` — ripples
        between ``(1-|gamma|)^2`` and ``(1+|gamma|)^2``.
        """
        ensure_positive("frequency_hz", frequency_hz)
        direct, reflected = self.path_lengths_m(ground_distance_m)
        wavenumber = 2.0 * np.pi * frequency_hz / SPEED_OF_LIGHT
        phasor = (
            1.0
            + self.reflection_coefficient
            * (direct / reflected)
            * np.exp(-1j * wavenumber * (reflected - direct))
        )
        return float(np.abs(phasor) ** 2)

    def gain_factor_db(self, ground_distance_m: float, frequency_hz: float) -> float:
        """The same correction in dB (negative in fades)."""
        return float(10.0 * np.log10(self.gain_factor(ground_distance_m, frequency_hz)))

    def null_distances_m(
        self, frequency_hz: float, *, max_distance_m: float = 10.0, points: int = 4000
    ) -> np.ndarray:
        """Ground distances of destructive fades within a range span."""
        ensure_positive("max_distance_m", max_distance_m)
        distances = np.linspace(0.2, max_distance_m, points)
        gains = np.array([self.gain_factor(d, frequency_hz) for d in distances])
        minima = (
            (gains[1:-1] < gains[:-2])
            & (gains[1:-1] < gains[2:])
            & (gains[1:-1] < 0.5)
        )
        return distances[1:-1][minima]


@dataclass(frozen=True)
class TwoRayDownlinkBudget:
    """A downlink budget with the floor bounce folded in.

    Wraps a :class:`DownlinkBudget`; the ripple applies to the one-way RF
    power, hence TWICE (in dB) to the square-law video SNR.
    """

    base: DownlinkBudget
    geometry: TwoRayGeometry

    def video_snr_db(self, distance_m: float, **kwargs) -> float:
        """Video SNR with the two-ray ripple applied."""
        ripple_db = self.geometry.gain_factor_db(distance_m, self.base.frequency_hz)
        return self.base.video_snr_db(distance_m, **kwargs) + 2.0 * ripple_db

    def detection_snr_db(self, distance_m: float, chirp_duration_s: float, **kwargs) -> float:
        """Detection SNR with the ripple applied."""
        return self.video_snr_db(distance_m, **kwargs) + self.base.processing_gain_db(
            chirp_duration_s
        )
