"""HTTP metrics exporter: Prometheus text exposition over stdlib only.

Three connected pieces:

* :func:`render_exposition` — render a
  :func:`repro.obs.metrics.snapshot` as Prometheus text exposition
  format 0.0.4 (counters get a ``_total`` suffix, histograms emit
  cumulative ``_bucket{le="..."}`` series plus ``_sum``/``_count``).
* :func:`parse_exposition` / :func:`validate_exposition` — an in-tree
  parser and validator for the same format (metric-name and label
  grammar, escape rules, histogram bucket monotonicity, ``+Inf`` ==
  ``_count``), used by the test suite and the CI ``obs-http`` job so the
  wire format is checked without any third-party dependency.
* :class:`MetricsExporter` — a daemon-thread
  :class:`~http.server.ThreadingHTTPServer` answering ``GET /metrics``
  (live registry snapshot), ``GET /healthz``, and ``GET /status``
  (JSON: run id, version, uptime, plus whatever the optional
  ``status_provider`` contributes — ``repro serve`` passes its
  scheduler/store payload so HTTP and the NDJSON status verb agree).

The exporter only *reads*: every scrape calls ``snapshot()`` under the
registry lock and renders a copy, so scraping can never perturb a run.
Nothing here is imported on any hot path — when ``--metrics-port`` is
absent the exporter simply never starts, keeping the disabled-telemetry
cost contract intact.
"""

from __future__ import annotations

import json
import math
import os
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import urlsplit

from repro.obs import metrics as _metrics
from repro.obs import runtime as _runtime

__all__ = [
    "CONTENT_TYPE",
    "MetricsExporter",
    "diff_against_snapshot",
    "parse_exposition",
    "render_exposition",
    "validate_exposition",
]

#: Content type advertised on ``GET /metrics``.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Prefix prepended to every exported metric family.
METRIC_PREFIX = "repro_"

_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


# -- rendering ---------------------------------------------------------------


def _sanitize(name: str) -> str:
    """Map a registry metric name onto the exposition grammar.

    Registry names are dotted (``executor.chunks``); the exposition
    grammar forbids dots, so every disallowed character becomes an
    underscore and the family is prefixed with :data:`METRIC_PREFIX`.
    """
    return METRIC_PREFIX + _SANITIZE_RE.sub("_", name)


def _format_value(value: "int | float") -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def render_exposition(snapshot: "dict[str, Any]") -> str:
    """Render a metrics snapshot as Prometheus text exposition 0.0.4.

    Counters become ``<prefix><name>_total`` counter families, gauges
    map one-to-one, and each histogram becomes a histogram family with
    cumulative ``_bucket{le="..."}`` samples (closing ``le="+Inf"``
    equal to ``_count``) plus ``_sum`` and ``_count``.  Raises
    ``ValueError`` if two registry names collapse onto the same family
    after sanitization — silent merging would mis-report both.
    """
    lines: "list[str]" = []
    seen: "dict[str, str]" = {}

    def family(name: str, kind: str, suffix: str = "") -> str:
        metric = _sanitize(name) + suffix
        if metric in seen:
            raise ValueError(
                f"metric names {seen[metric]!r} and {name!r} both export "
                f"as {metric!r}; rename one"
            )
        seen[metric] = name
        lines.append(f"# HELP {metric} repro metric {_escape_help(name)!r}")
        lines.append(f"# TYPE {metric} {kind}")
        return metric

    for name, value in snapshot.get("counters", {}).items():
        metric = family(name, "counter", "_total")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = family(name, "gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, data in snapshot.get("histograms", {}).items():
        metric = family(name, "histogram")
        edges = list(data.get("edges", ()))
        buckets = list(data.get("bucket_counts", ()))
        cumulative = 0
        for edge, bucket in zip(edges, buckets):
            cumulative += bucket
            escaped = _escape_label_value(_format_value(edge))
            lines.append(f'{metric}_bucket{{le="{escaped}"}} {cumulative}')
        if len(buckets) == len(edges) + 1:
            cumulative += buckets[-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(data.get('sum', 0.0))}")
        lines.append(f"{metric}_count {_format_value(data.get('count', 0))}")
    return "\n".join(lines) + "\n"


# -- parsing / validation ----------------------------------------------------


def _parse_labels(text: str, lineno: int) -> "dict[str, str]":
    """Parse the ``name="value",...`` body between ``{`` and ``}``."""
    labels: "dict[str, str]" = {}
    position = 0
    while position < len(text):
        match = re.match(r"([a-zA-Z_][a-zA-Z0-9_]*)=\"", text[position:])
        if match is None:
            raise ValueError(f"line {lineno}: malformed label at {text[position:]!r}")
        name = match.group(1)
        position += match.end()
        value_chars: "list[str]" = []
        while True:
            if position >= len(text):
                raise ValueError(f"line {lineno}: unterminated label value")
            char = text[position]
            if char == "\\":
                if position + 1 >= len(text):
                    raise ValueError(f"line {lineno}: dangling escape")
                escape = text[position + 1]
                if escape == "n":
                    value_chars.append("\n")
                elif escape in ("\\", '"'):
                    value_chars.append(escape)
                else:
                    raise ValueError(f"line {lineno}: bad escape \\{escape}")
                position += 2
                continue
            if char == '"':
                position += 1
                break
            if char == "\n":
                raise ValueError(f"line {lineno}: raw newline in label value")
            value_chars.append(char)
            position += 1
        if name in labels:
            raise ValueError(f"line {lineno}: duplicate label {name!r}")
        labels[name] = "".join(value_chars)
        if position < len(text):
            if text[position] != ",":
                raise ValueError(
                    f"line {lineno}: expected ',' between labels, got "
                    f"{text[position]!r}"
                )
            position += 1
    return labels


def _parse_sample_value(token: str, lineno: int) -> float:
    if token in ("+Inf", "Inf"):
        return float("inf")
    if token == "-Inf":
        return float("-inf")
    if token == "NaN":
        return float("nan")
    try:
        return float(token)
    except ValueError:
        raise ValueError(f"line {lineno}: bad sample value {token!r}") from None


def parse_exposition(text: str) -> "dict[str, Any]":
    """Parse Prometheus text exposition into types and samples.

    Returns ``{"types": {family: kind}, "samples": [(name, labels,
    value)]}``.  Raises ``ValueError`` on any grammar violation: bad
    metric or label names, bad escapes, malformed values, duplicate
    ``# TYPE`` lines, or a ``# TYPE`` appearing after its family's
    samples.
    """
    types: "dict[str, str]" = {}
    samples: "list[tuple[str, dict[str, str], float]]" = []
    sampled_families: "set[str]" = set()
    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.rstrip("\r")
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line")
            _, _, name, kind = parts
            if not _METRIC_NAME_RE.match(name):
                raise ValueError(f"line {lineno}: bad metric name {name!r}")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: bad metric type {kind!r}")
            if name in types:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
            if name in sampled_families:
                raise ValueError(
                    f"line {lineno}: TYPE for {name!r} after its samples"
                )
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _METRIC_NAME_RE.match(parts[2]):
                raise ValueError(f"line {lineno}: malformed HELP line")
            continue
        if line.startswith("#"):
            continue
        if line.startswith(" ") or line != line.strip():
            raise ValueError(f"line {lineno}: stray whitespace around sample")
        brace = line.find("{")
        if brace >= 0:
            name = line[:brace]
            closing = line.rfind("}")
            if closing < brace:
                raise ValueError(f"line {lineno}: unbalanced label braces")
            labels = _parse_labels(line[brace + 1:closing], lineno)
            rest = line[closing + 1:].strip()
        else:
            name, _, rest = line.partition(" ")
            labels = {}
            rest = rest.strip()
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        tokens = rest.split()
        if len(tokens) not in (1, 2):
            raise ValueError(f"line {lineno}: expected 'value [timestamp]'")
        value = _parse_sample_value(tokens[0], lineno)
        if len(tokens) == 2:
            try:
                int(tokens[1])
            except ValueError:
                raise ValueError(
                    f"line {lineno}: bad timestamp {tokens[1]!r}"
                ) from None
        samples.append((name, labels, value))
        sampled_families.add(_family_of(name, types))
    return {"types": types, "samples": samples}


def _family_of(sample_name: str, types: "dict[str, str]") -> str:
    """The declared family a sample belongs to (histogram suffix-aware)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return sample_name


def validate_exposition(text: str) -> "dict[str, Any]":
    """Parse *and* semantically validate an exposition document.

    Beyond the grammar checks in :func:`parse_exposition`: every sample
    must belong to a declared family, counter samples end in ``_total``,
    series are unique, and each histogram has monotonically
    non-decreasing cumulative buckets whose ``le="+Inf"`` count equals
    its ``_count`` sample, plus exactly one ``_sum``.  Returns the
    parsed structure on success.
    """
    parsed = parse_exposition(text)
    types = parsed["types"]
    seen_series: "set[tuple[str, tuple[tuple[str, str], ...]]]" = set()
    histogram_parts: "dict[str, dict[str, Any]]" = {
        name: {"buckets": [], "sum": None, "count": None}
        for name, kind in types.items()
        if kind == "histogram"
    }
    for name, labels, value in parsed["samples"]:
        series = (name, tuple(sorted(labels.items())))
        if series in seen_series:
            raise ValueError(f"duplicate series {name}{labels}")
        seen_series.add(series)
        family = _family_of(name, types)
        kind = types.get(family)
        if kind is None:
            raise ValueError(f"sample {name!r} has no # TYPE declaration")
        if kind == "counter" and not name.endswith("_total"):
            raise ValueError(f"counter sample {name!r} must end in _total")
        if kind == "histogram":
            parts = histogram_parts[family]
            if name == family + "_bucket":
                if "le" not in labels:
                    raise ValueError(f"{name} sample missing 'le' label")
                parts["buckets"].append(
                    (_parse_sample_value(labels["le"], 0), value)
                )
            elif name == family + "_sum":
                parts["sum"] = value
            elif name == family + "_count":
                parts["count"] = value
    for family, parts in histogram_parts.items():
        buckets = parts["buckets"]
        if not buckets or not math.isinf(buckets[-1][0]):
            raise ValueError(f"histogram {family!r} missing le=\"+Inf\" bucket")
        edges = [edge for edge, _ in buckets]
        if edges != sorted(edges):
            raise ValueError(f"histogram {family!r} buckets out of edge order")
        counts = [count for _, count in buckets]
        if any(b < a for a, b in zip(counts, counts[1:])):
            raise ValueError(f"histogram {family!r} buckets are not cumulative")
        if parts["count"] is None or parts["sum"] is None:
            raise ValueError(f"histogram {family!r} missing _sum or _count")
        if counts[-1] != parts["count"]:
            raise ValueError(
                f"histogram {family!r}: le=\"+Inf\" bucket "
                f"({counts[-1]}) != _count ({parts['count']})"
            )
    return parsed


def diff_against_snapshot(
    text: str, snapshot: "dict[str, Any]"
) -> "list[str]":
    """Discrepancies between an exposition document and a snapshot.

    Validates ``text`` and compares every rendered value against the
    registry snapshot it claims to represent.  Returns a list of
    human-readable mismatch strings — empty means full agreement.  Used
    by the test suite and the CI job as the agreement oracle.
    """
    parsed = validate_exposition(text)
    values = {
        (name, tuple(sorted(labels.items()))): value
        for name, labels, value in parsed["samples"]
    }
    problems: "list[str]" = []

    def check(series_name: str, labels: "dict[str, str]", expected: float) -> None:
        key = (series_name, tuple(sorted(labels.items())))
        actual = values.pop(key, None)
        if actual is None:
            problems.append(f"missing sample {series_name}{labels}")
        elif actual != float(expected):
            problems.append(
                f"{series_name}{labels}: exposition {actual!r} != "
                f"snapshot {float(expected)!r}"
            )

    for name, value in snapshot.get("counters", {}).items():
        check(_sanitize(name) + "_total", {}, value)
    for name, value in snapshot.get("gauges", {}).items():
        check(_sanitize(name), {}, value)
    for name, data in snapshot.get("histograms", {}).items():
        metric = _sanitize(name)
        edges = list(data.get("edges", ()))
        buckets = list(data.get("bucket_counts", ()))
        cumulative = 0
        for edge, bucket in zip(edges, buckets):
            cumulative += bucket
            check(metric + "_bucket", {"le": _format_value(edge)}, cumulative)
        check(metric + "_bucket", {"le": "+Inf"}, data.get("count", 0))
        check(metric + "_sum", {}, data.get("sum", 0.0))
        check(metric + "_count", {}, data.get("count", 0))
    for (name, labels), value in values.items():
        problems.append(f"unexpected sample {name}{dict(labels)} = {value!r}")
    return problems


# -- HTTP server -------------------------------------------------------------


def _make_handler(exporter: "MetricsExporter") -> type:
    class Handler(BaseHTTPRequestHandler):
        # Scrapes are not run events; keep stderr quiet.
        def log_message(self, *args: Any) -> None:  # pragma: no cover
            pass

        def do_GET(self) -> None:
            try:
                status, content_type, body = exporter._route(
                    urlsplit(self.path).path
                )
            except Exception as error:  # never kill the serving thread
                status = 500
                content_type = "text/plain; charset=utf-8"
                body = f"internal error: {error}\n".encode()
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            try:
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError):
                pass

    return Handler


class MetricsExporter:
    """Background HTTP endpoint over the live metrics registry.

    ``start()`` binds (``port=0`` picks a free port — read it back from
    ``.port``) and serves from a daemon thread; ``stop()`` shuts the
    server down.  ``status_provider`` is an optional callable returning
    a JSON-safe dict merged into the ``/status`` payload — ``repro
    serve`` passes its ``status_payload`` so the HTTP view and the
    NDJSON status verb report the same fields.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        status_provider: "Callable[[], dict[str, Any]] | None" = None,
    ) -> None:
        self.host = host
        self.port = port
        self.status_provider = status_provider
        self._server: "ThreadingHTTPServer | None" = None
        self._thread: "threading.Thread | None" = None
        self._started_monotonic = 0.0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "tuple[str, int]":
        """Bind and serve; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("exporter already started")
        server = ThreadingHTTPServer((self.host, self.port), _make_handler(self))
        server.daemon_threads = True
        self.host, self.port = server.server_address[:2]
        self._server = server
        self._started_monotonic = time.monotonic()
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self.host, self.port

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsExporter":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- routes --------------------------------------------------------------

    def uptime_s(self) -> float:
        return time.monotonic() - self._started_monotonic

    def status_payload(self) -> "dict[str, Any]":
        """Base run-identity fields, merged under the provider's."""
        from repro import __version__

        payload: "dict[str, Any]" = {
            "run_id": _runtime.run_id(),
            "version": __version__,
            "uptime_s": round(self.uptime_s(), 3),
            "pid": os.getpid(),
        }
        if self.status_provider is not None:
            payload.update(self.status_provider())
        return payload

    def _route(self, path: str) -> "tuple[int, str, bytes]":
        if path == "/metrics":
            body = render_exposition(_metrics.snapshot()).encode("utf-8")
            return 200, CONTENT_TYPE, body
        if path == "/healthz":
            return 200, "text/plain; charset=utf-8", b"ok\n"
        if path == "/status":
            body = json.dumps(
                self.status_payload(), sort_keys=True, default=str
            ).encode("utf-8")
            return 200, "application/json; charset=utf-8", body + b"\n"
        return 404, "text/plain; charset=utf-8", b"not found\n"
