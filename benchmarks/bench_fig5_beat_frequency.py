"""Fig. 5 — beat frequency vs chirp duration (wired validation).

The paper validates Eq. 11 by wiring a chirp generator straight into the
tag decoder (1 GHz bandwidth, 45-inch delay-line difference) and plotting
the measured envelope-detector beat frequency against 1/T_chirp: a line of
slope ``B dL / (k c)``.  This bench runs the same experiment through the
circuit-level sampled frontend (at a scaled bandwidth, same maths) and fits
the line.
"""

import numpy as np

from conftest import emit
from repro.components.adc import ADC
from repro.components.delay_line import CoaxialDelayLine
from repro.components.envelope_detector import EnvelopeDetector
from repro.sim.results import format_table
from repro.tag.frontend import SampledTagFrontend
from repro.utils.dsp import dominant_frequency
from repro.waveform.parameters import ChirpParameters

BANDWIDTH_HZ = 5e6  # scaled-down stand-in for the 1 GHz bench supply
DELTA_T_S = 2e-6  # exaggerated dT so the scaled beat stays measurable
DURATIONS_S = [40e-6, 60e-6, 80e-6, 120e-6, 160e-6, 200e-6]


def build_frontend() -> SampledTagFrontend:
    short = CoaxialDelayLine(length_m=0.1, loss_db_per_m_at_1ghz=0.0)
    long = CoaxialDelayLine(
        length_m=0.1 + 0.7 * 299792458.0 * DELTA_T_S, loss_db_per_m_at_1ghz=0.0
    )
    return SampledTagFrontend(
        line_short=short,
        line_long=long,
        detector=EnvelopeDetector(lowpass_cutoff_hz=400e3, output_noise_v_per_rt_hz=1e-12),
        adc=ADC(sample_rate_hz=2e6),
        baseband_sample_rate_hz=25e6,
    )


def measure_beats() -> "list[tuple[float, float, float]]":
    """(1/T, expected beat, measured beat) for every duration."""
    frontend = build_frontend()
    rows = []
    for duration in DURATIONS_S:
        chirp = ChirpParameters(
            start_frequency_hz=100e6, bandwidth_hz=BANDWIDTH_HZ, duration_s=duration
        )
        capture = frontend.capture_chirp(chirp, input_amplitude_v=0.02, rng=0)
        measured = dominant_frequency(
            capture.samples, capture.sample_rate_hz, min_frequency_hz=5e3
        )
        rows.append((1.0 / duration, frontend.expected_beat_hz(chirp), measured))
    return rows


def test_fig5_beat_frequency_linearity(benchmark):
    rows = benchmark.pedantic(measure_beats, rounds=1, iterations=1)
    table = format_table(
        ["1/T_chirp (1/s)", "expected df (kHz)", "measured df (kHz)", "error (%)"],
        [
            [
                f"{inv:.0f}",
                f"{expected / 1e3:.2f}",
                f"{measured / 1e3:.2f}",
                f"{abs(measured - expected) / expected * 100:.2f}",
            ]
            for inv, expected, measured in rows
        ],
    )
    inv_durations = np.array([r[0] for r in rows])
    measured = np.array([r[2] for r in rows])
    slope, intercept = np.polyfit(inv_durations, measured, 1)
    expected_slope = BANDWIDTH_HZ * DELTA_T_S
    table += (
        f"\nfitted slope  {slope:.4g} Hz*s  (Eq. 11 predicts B*dT = {expected_slope:.4g})"
        f"\nfit intercept {intercept:.4g} Hz"
    )
    emit("fig5_beat_frequency", table)

    # Paper shape: linear in 1/T with slope B*dT and near-zero intercept.
    assert slope == np.float64(slope)
    assert abs(slope - expected_slope) / expected_slope < 0.02
    assert abs(intercept) < 0.05 * measured.max()
    for _, expected, got in rows:
        assert abs(got - expected) / expected < 0.02
