"""Extension bench — CSS wrap-position keying vs plain CSSK (Section 6).

The paper's discussion names chirp-spread-spectrum-style modulation as the
route past CSSK's logarithmic rate scaling.  This bench compares the
implemented extension (cyclically wrapped sweeps carrying Gray-coded
position bits on top of the slope bits) against plain CSSK at equal
waveform footprint: same bandwidth, same chirp period, same tag hardware.
"""

import numpy as np

from conftest import emit
from repro.channel.link_budget import DownlinkBudget
from repro.core.css import CssAlphabet, CssDecoder, build_css_frame
from repro.core.downlink import DownlinkEncoder
from repro.core.ber import random_bits
from repro.core.packet import PacketFields
from repro.radar.config import XBAND_9GHZ
from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials
from repro.sim.results import format_table

SNRS_DB = [6.0, 10.0, 14.0, 20.0]
FRAMES_PER_POINT = 30
SYMBOLS_PER_FRAME = 16


def measure_css(css, encoder, frontend, snr, rng_base):
    decoder = CssDecoder(css)
    errors = 0
    total = 0
    for trial in range(FRAMES_PER_POINT):
        bits = random_bits(css.bits_per_symbol * SYMBOLS_PER_FRAME, rng=rng_base + trial)
        frame, fractions, padded = build_css_frame(css, encoder, bits)
        capture = frontend.capture(
            frame, 2.0, rng=rng_base + trial, snr_override_db=snr, wrap_fractions=fractions
        )
        decoded = decoder.decode_payload(
            capture,
            num_symbols=padded.size // css.bits_per_symbol,
            start_slot=PacketFields().preamble_length,
        )
        errors += int(np.sum(padded[: decoded.size] != decoded)) + padded.size - decoded.size
        total += padded.size
    return errors / total


def run_comparison(paper_alphabet):
    encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=paper_alphabet)
    budget = DownlinkBudget(
        tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
        radar_antenna=XBAND_9GHZ.antenna,
        frequency_hz=XBAND_9GHZ.center_frequency_hz,
    )
    from repro.tag.frontend import AnalyticTagFrontend

    frontend = AnalyticTagFrontend(
        budget=budget, delta_t_s=paper_alphabet.decoder.delta_t_s
    )
    schemes = {
        f"CSSK ({paper_alphabet.data_rate_bps() / 1e3:.0f} kbps)": None,
        "CSS +2 pos bits": CssAlphabet(cssk=paper_alphabet, position_bits=2),
        "CSS +3 pos bits": CssAlphabet(cssk=paper_alphabet, position_bits=3),
    }
    results = {}
    rates = {}
    for label, css in schemes.items():
        series = []
        for snr in SNRS_DB:
            if css is None:
                config = DownlinkTrialConfig(
                    radar_config=XBAND_9GHZ,
                    alphabet=paper_alphabet,
                    snr_override_db=snr,
                    num_frames=FRAMES_PER_POINT,
                    payload_symbols_per_frame=SYMBOLS_PER_FRAME,
                )
                series.append(run_downlink_trials(config, rng=int(snr * 3)).ber)
            else:
                series.append(measure_css(css, encoder, frontend, snr, int(snr * 3)))
        results[label] = series
        rates[label] = (
            paper_alphabet.data_rate_bps() if css is None else css.data_rate_bps()
        )
    return results, rates


def test_css_extension(benchmark, paper_alphabet):
    results, rates = benchmark.pedantic(
        run_comparison, args=(paper_alphabet,), rounds=1, iterations=1
    )
    rows = []
    for label, series in results.items():
        rows.append(
            [label, f"{rates[label] / 1e3:.1f}"]
            + [f"{ber:.2e}" for ber in series]
        )
    table = format_table(
        ["scheme", "rate (kbps)"] + [f"BER @{snr:.0f} dB" for snr in SNRS_DB], rows
    )
    emit("css_extension", table)

    cssk_label = next(l for l in results if l.startswith("CSSK"))
    css2_label = "CSS +2 pos bits"
    # The extension buys ~40% more rate...
    assert rates[css2_label] / rates[cssk_label] > 1.3
    # ...without giving up the operating region: BER within 1e-2 of CSSK at
    # every probed SNR, clean at the top.
    for cssk_ber, css_ber in zip(results[cssk_label], results[css2_label]):
        assert css_ber <= cssk_ber + 1e-2
    assert results[css2_label][-1] < 1e-3
