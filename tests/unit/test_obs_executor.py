"""Observability through the executor: merged logs, worker metrics, traces.

The acceptance scenario for the observability layer: a parallel, faulted
Monte-Carlo run must produce ONE merged JSON-lines log and ONE Chrome
trace file, with chunk spans, retry events, and store traffic all
attributable to the correct chunk/trial indices — while the computed
values stay bit-identical to a serial, observability-off run.

Injection helpers mirror ``test_faults.py``: module-level (picklable),
failing exactly once via a durable flag file.
"""

import json
import os

import pytest

from repro import obs
from repro.obs import tracing
from repro.sim.executor import ExecutionPlan, map_trials, strip_execution
from repro.sim.sweep import sweep
from repro.utils.rng import SeedSpec


def _values(spec, indices):
    return [float(spec.stream(index).uniform()) for index in indices]


def _echo_chunk(payload, spec, indices):
    return _values(spec, indices)


def _counting_chunk(payload, spec, indices):
    """A chunk that also increments a metric inside the worker."""
    obs.inc("test.trials", len(indices))
    obs.observe("test.trial_seconds", 0.001 * len(indices))
    return _values(spec, indices)


def _crash_once_chunk(payload, spec, indices):
    """Raise the first time the chosen trial index is dispatched."""
    flag_path, crash_index = payload
    if crash_index in indices and not os.path.exists(flag_path):
        with open(flag_path, "w") as handle:
            handle.write("tripped")
            handle.flush()
            os.fsync(handle.fileno())
        raise RuntimeError(f"injected fault at trial {crash_index}")
    return _values(spec, indices)


def _sweep_eval(parameter, stream):
    return parameter + stream.uniform()


@pytest.fixture()
def obs_run(tmp_path):
    """Full observability: JSON-lines into a shared file + tracing on."""
    log_file = tmp_path / "run.log"
    trace_dir = tmp_path / "traces"
    run = obs.configure(
        log_format="json",
        log_file=str(log_file),
        trace_dir=str(trace_dir),
        run_id=None,
        export_env=True,  # pool workers must join this run
    )
    return run, log_file, trace_dir


def _read_log(log_file):
    return [json.loads(line) for line in log_file.read_text().splitlines() if line]


class TestMergedTelemetry:
    def test_faulted_parallel_run_produces_one_log_and_one_trace(self, obs_run):
        run, log_file, trace_dir = obs_run
        flag = log_file.parent / "crash.flag"
        plan = ExecutionPlan(workers=4, chunk_size=4, max_retries=2)
        spec = SeedSpec.from_rng(11)

        results, report = map_trials(
            _crash_once_chunk, (str(flag), 7), 20, spec, plan
        )

        # Values recovered bit-identically despite the injected fault.
        baseline, _ = map_trials(_echo_chunk, None, 20, SeedSpec.from_rng(11), None)
        assert results == baseline
        assert report.retries == 1

        events = _read_log(log_file)
        assert events, "expected a merged JSON-lines log"
        # One run id across parent and all workers.
        assert {event["run"] for event in events} == {run}

        # The retry event is attributed to the chunk owning trial 7
        # (chunk_size=4 -> trial 7 lives in chunk 1).
        [retry] = [e for e in events if e["event"] == "executor.chunk.retry"]
        assert retry["chunk"] == 1
        assert retry["kind"] == "raise"
        assert "injected fault at trial 7" in retry["error"]

        # Dispatch events carry the chunk's starting trial index.
        dispatches = [e for e in events if e["event"] == "executor.chunk.dispatch"]
        assert {(e["chunk"], e["start_index"]) for e in dispatches} >= {
            (0, 0), (1, 4), (2, 8), (3, 12), (4, 16)
        }
        # Chunk 1 was dispatched twice: original + retry.
        assert sum(1 for e in dispatches if e["chunk"] == 1) == 2

        # Exactly one trace file for the whole run, with worker spans.
        [trace_file] = sorted(trace_dir.glob("trace_*.json"))
        assert trace_file == tracing.trace_path(trace_dir, run)
        spans = tracing.read_trace_events(trace_file)
        chunk_spans = [s for s in spans if s["name"] == "pool.chunk"]
        assert {s["args"]["chunk"] for s in chunk_spans} == {0, 1, 2, 3, 4}
        assert len({s["pid"] for s in chunk_spans}) > 1  # spans from workers
        [retry_mark] = [s for s in spans if s["name"] == "executor.chunk.retry"]
        assert retry_mark["args"]["chunk"] == 1

    def test_worker_metrics_merge_into_parent(self, obs_run):
        _, _, _ = obs_run
        plan = ExecutionPlan(workers=2, chunk_size=5)
        map_trials(_counting_chunk, None, 20, SeedSpec.from_rng(3), plan)
        snap = obs.snapshot()
        # Counters incremented inside worker processes arrive in full.
        assert snap["counters"]["test.trials"] == 20
        assert snap["counters"]["executor.trials.completed"] == 20
        assert snap["counters"]["executor.chunks.completed"] == 4
        assert snap["histograms"]["test.trial_seconds"]["count"] == 4

    def test_serial_path_counts_once(self, obs_run):
        map_trials(_counting_chunk, None, 12, SeedSpec.from_rng(3), None)
        snap = obs.snapshot()
        # Serial chunks increment the parent registry directly; the
        # chunk-delta merge must not double-count them.
        assert snap["counters"]["test.trials"] == 12
        assert snap["counters"]["executor.trials.completed"] == 12


class TestStoreTelemetry:
    def test_sweep_cache_traffic_in_log(self, obs_run, tmp_path):
        from repro.store import ExperimentStore

        _, log_file, _ = obs_run
        store = ExperimentStore(tmp_path / "cache")
        params = [1.0, 2.0, 3.0]

        sweep("warmup", params, _sweep_eval, rng=5, store=store)
        cold = [e for e in _read_log(log_file) if e["event"] == "sweep.cache"]
        assert cold[-1]["hits"] == 0 and cold[-1]["misses"] == 3

        sweep("warm", params, _sweep_eval, rng=5, store=store)
        events = _read_log(log_file)
        warm = [e for e in events if e["event"] == "sweep.cache"]
        assert warm[-1]["hits"] == 3 and warm[-1]["misses"] == 0

        snap = obs.snapshot()
        assert snap["counters"]["store.hits"] == 3
        assert snap["counters"]["store.misses"] == 3
        assert "store.corrupt_misses" not in snap["counters"]
        assert snap["counters"]["store.puts"] == 3
        assert snap["histograms"]["store.fingerprint_seconds"]["count"] >= 6
        hits = [e for e in events if e["event"] == "store.hit"]
        assert len(hits) == 3
        assert all(e["kind"] == "sweep-point" for e in hits)

    def test_corrupt_entry_classified(self, obs_run, tmp_path):
        from repro.store import ExperimentStore

        store = ExperimentStore(tmp_path / "cache")
        store.put("a" * 64, "unit", {"x": 1})
        [record_path] = [
            p for p in (tmp_path / "cache").rglob("*.json")
            if p.name != "index.json"
        ]
        record_path.write_text("{not json")
        assert store.get("a" * 64) is None
        snap = obs.snapshot()
        assert snap["counters"]["store.corrupt_misses"] == 1
        assert snap["counters"]["store.misses"] == 1


class TestDeterminismWithObsEnabled:
    def test_parallel_equals_serial_with_full_telemetry(self, obs_run):
        serial, _ = map_trials(_echo_chunk, None, 24, SeedSpec.from_rng(9), None)
        parallel, _ = map_trials(
            _echo_chunk, None, 24, SeedSpec.from_rng(9),
            ExecutionPlan(workers=3, chunk_size=4),
        )
        assert serial == parallel

    def test_sweep_metadata_unchanged_by_obs(self, obs_run):
        with_obs = sweep("s", [1.0, 2.0], _sweep_eval, rng=2)
        obs.reset()
        without = sweep("s", [1.0, 2.0], _sweep_eval, rng=2)
        assert with_obs.values == without.values
        assert strip_execution(with_obs.metadata) == strip_execution(without.metadata)
