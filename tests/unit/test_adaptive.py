"""Adaptive Monte-Carlo: stopping rule, driver, engine wiring, store keys.

The contracts under test:

* interval helpers are sane (contain the point estimate, shrink with n,
  Clopper-Pearson at least as wide as Wilson);
* the stopping rule is a pure function of the cumulative outcome prefix
  and honors min/max/degenerate modes;
* ``run_adaptive_trials`` is bit-exact across worker counts and chunk
  sizes (trial seeds never depend on the stopping decision);
* a degenerate rule (``target_rel_width=0``) reproduces the fixed-budget
  engine result bit for bit;
* adaptive and fixed configurations fingerprint to *different* store
  keys, and changing ``max_frames`` invalidates only the affected point.
"""

import math

import pytest

from repro.sim.adaptive import (
    AdaptiveConfig,
    binomial_interval,
    clopper_pearson_interval,
    run_adaptive_trials,
    should_stop,
    stop_reason,
    stopping_trials,
    wilson_interval,
)
from repro.sim.executor import ExecutionPlan
from repro.utils.rng import SeedSpec


def _coin_chunk(payload, spec, indices):
    """Synthetic trial: ``bits`` coin flips at error probability ``p``."""
    p, bits = payload
    results = []
    for index in indices:
        stream = spec.stream(index)
        errors = int((stream.random(bits) < p).sum())
        results.append((errors, bits))
    return results


def _counts(result):
    return result


# -- interval helpers --------------------------------------------------------


def test_wilson_contains_point_estimate():
    for errors, total in [(0, 50), (1, 50), (25, 50), (50, 50)]:
        lo, hi = wilson_interval(errors, total)
        assert 0.0 <= lo <= errors / total <= hi <= 1.0


def test_wilson_zero_total_is_vacuous():
    assert wilson_interval(0, 0) == (0.0, 1.0)


def test_wilson_width_shrinks_with_sample_size():
    widths = []
    for total in (10, 100, 1000):
        lo, hi = wilson_interval(total // 10, total)
        widths.append(hi - lo)
    assert widths[0] > widths[1] > widths[2]


def test_clopper_pearson_at_least_as_wide_as_wilson():
    scipy = pytest.importorskip("scipy")  # noqa: F841 - gate only
    for errors, total in [(0, 40), (2, 40), (20, 40)]:
        w_lo, w_hi = wilson_interval(errors, total)
        c_lo, c_hi = clopper_pearson_interval(errors, total)
        assert c_hi - c_lo >= w_hi - w_lo - 1e-12
        assert c_lo <= errors / total <= c_hi


def test_interval_dispatch_and_validation():
    assert binomial_interval(1, 10, method="wilson") == wilson_interval(1, 10)
    with pytest.raises(ValueError):
        binomial_interval(1, 10, method="bogus")
    with pytest.raises(ValueError):
        wilson_interval(5, 3)
    with pytest.raises(ValueError):
        wilson_interval(-1, 3)
    with pytest.raises(ValueError):
        wilson_interval(1, 10, confidence=1.0)


def test_higher_confidence_widens_the_interval():
    lo95, hi95 = wilson_interval(5, 100, confidence=0.95)
    lo99, hi99 = wilson_interval(5, 100, confidence=0.99)
    assert hi99 - lo99 > hi95 - lo95


# -- AdaptiveConfig ----------------------------------------------------------


def test_adaptive_config_validation():
    AdaptiveConfig()  # defaults are valid
    with pytest.raises(ValueError):
        AdaptiveConfig(target_rel_width=-0.1)
    with pytest.raises(ValueError):
        AdaptiveConfig(min_frames=0)
    with pytest.raises(ValueError):
        AdaptiveConfig(min_frames=10, max_frames=5)
    with pytest.raises(ValueError):
        AdaptiveConfig(batch_frames=0)
    with pytest.raises(ValueError):
        AdaptiveConfig(confidence=0.0)
    with pytest.raises(ValueError):
        AdaptiveConfig(method="gaussian")


# -- stopping rule -----------------------------------------------------------


def test_never_stops_before_min_frames():
    config = AdaptiveConfig(
        target_rel_width=10.0, min_frames=8, max_frames=100, batch_frames=2
    )
    assert not should_stop(0, 20, 4, config)
    assert not should_stop(3, 20, 6, config)


def test_always_stops_at_max_frames():
    config = AdaptiveConfig(
        target_rel_width=0.0, min_frames=1, max_frames=12, batch_frames=5
    )
    assert should_stop(3, 120, 12, config)
    assert stop_reason(3, 120, 12, config) == "cap"


def test_degenerate_width_never_stops_early():
    config = AdaptiveConfig(
        target_rel_width=0.0, min_frames=1, max_frames=50, batch_frames=5
    )
    for trials in (5, 10, 45):
        assert not should_stop(0, trials * 10, trials, config)
        assert not should_stop(trials, trials * 10, trials, config)


def test_zero_errors_stops_at_min_frames():
    config = AdaptiveConfig(
        target_rel_width=0.25, min_frames=10, max_frames=1000, batch_frames=10
    )
    assert should_stop(0, 100, 10, config)
    assert stop_reason(0, 100, 10, config) == "zero-errors"


def test_ci_met_stops_and_names_the_reason():
    config = AdaptiveConfig(
        target_rel_width=5.0, min_frames=4, max_frames=1000, batch_frames=4
    )
    # Huge relative target: any non-degenerate interval around a chunky
    # error count satisfies it.
    assert should_stop(40, 100, 10, config)
    assert stop_reason(40, 100, 10, config) == "ci-met"


def test_stopping_trials_round_boundaries():
    config = AdaptiveConfig(
        target_rel_width=0.25, min_frames=10, max_frames=100, batch_frames=10
    )
    # Zero errors everywhere: stops at the first round boundary >= min.
    assert stopping_trials([(0, 10)] * 100, config) == 10
    # Degenerate: runs the full cap.
    degenerate = AdaptiveConfig(
        target_rel_width=0.0, min_frames=10, max_frames=100, batch_frames=10
    )
    assert stopping_trials([(1, 10)] * 100, degenerate) == 100
    # Cap not a multiple of batch: last round truncates.
    truncated = AdaptiveConfig(
        target_rel_width=0.0, min_frames=1, max_frames=7, batch_frames=3
    )
    assert stopping_trials([(1, 10)] * 50, truncated) == 7


# -- driver ------------------------------------------------------------------


def test_driver_matches_pure_stopping_function():
    config = AdaptiveConfig(
        target_rel_width=1.0, min_frames=4, max_frames=40, batch_frames=4
    )
    spec = SeedSpec.from_rng(0)
    outcome = run_adaptive_trials(
        _coin_chunk, (0.2, 10), config, spec, None, counts=_counts
    )
    # Feed the same per-trial outcomes (extended to the cap) through the
    # pure simulator: the driver must have stopped at the same count.
    full = _coin_chunk((0.2, 10), spec, range(config.max_frames))
    assert stopping_trials(full, config) == outcome.frames
    assert outcome.per_trial == full[: outcome.frames]
    assert outcome.errors == sum(e for e, _ in outcome.per_trial)
    assert outcome.bits == sum(b for _, b in outcome.per_trial)
    assert outcome.ci_low <= outcome.errors / outcome.bits <= outcome.ci_high


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_driver_worker_count_invariance(workers):
    config = AdaptiveConfig(
        target_rel_width=0.8, min_frames=6, max_frames=30, batch_frames=6
    )
    baseline = run_adaptive_trials(
        _coin_chunk, (0.15, 20), config, 0, None, counts=_counts
    )
    plan = ExecutionPlan(workers=workers, chunk_size=2)
    outcome = run_adaptive_trials(
        _coin_chunk, (0.15, 20), config, 0, plan, counts=_counts
    )
    assert outcome.per_trial == baseline.per_trial
    assert outcome.frames == baseline.frames
    assert outcome.rounds == baseline.rounds
    assert outcome.summary() == baseline.summary()


def test_driver_chunk_size_invariance():
    config = AdaptiveConfig(
        target_rel_width=0.8, min_frames=5, max_frames=25, batch_frames=5
    )
    outcomes = [
        run_adaptive_trials(
            _coin_chunk, (0.1, 16), config, 7,
            ExecutionPlan(chunk_size=size), counts=_counts
        )
        for size in (1, 2, 5)
    ]
    assert all(o.per_trial == outcomes[0].per_trial for o in outcomes)
    assert all(o.summary() == outcomes[0].summary() for o in outcomes)


def test_result_summary_shape():
    config = AdaptiveConfig(
        target_rel_width=0.25, min_frames=5, max_frames=20, batch_frames=5
    )
    outcome = run_adaptive_trials(
        _coin_chunk, (0.0, 10), config, 0, None, counts=_counts
    )
    assert outcome.reason == "zero-errors"
    assert outcome.frames == 5 and outcome.rounds == 1
    summary = outcome.summary()
    assert summary["rel_width"] is None  # infinite on a zero estimate
    assert math.isinf(outcome.rel_width)
    assert outcome.ber == 0.0


# -- engine wiring -----------------------------------------------------------


def _ber_setup(num_frames=12):
    from repro.core.cssk import CsskAlphabet, DecoderDesign
    from repro.radar.config import XBAND_9GHZ
    from repro.sim.engine import DownlinkTrialConfig

    alphabet = CsskAlphabet.design(
        bandwidth_hz=1e9,
        decoder=DecoderDesign.from_inches(60.0),
        symbol_bits=7,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )
    return DownlinkTrialConfig(
        radar_config=XBAND_9GHZ.with_bandwidth(1e9),
        alphabet=alphabet,
        distance_m=7.0,
        num_frames=num_frames,
        payload_symbols_per_frame=8,
    )


def test_engine_degenerate_adaptive_equals_fixed_budget():
    from repro.sim.engine import run_downlink_trials

    config = _ber_setup(num_frames=12)
    fixed = run_downlink_trials(config, rng=0)
    degenerate = AdaptiveConfig(
        target_rel_width=0.0, min_frames=1, max_frames=12, batch_frames=5
    )
    point = run_downlink_trials(config, rng=0, adaptive=degenerate)
    assert point.bit_errors == fixed.bit_errors
    assert point.bits_total == fixed.bits_total
    assert point.ber == fixed.ber
    assert point.extra["adaptive"]["frames"] == 12
    assert point.extra["adaptive"]["reason"] == "cap"


def test_engine_adaptive_worker_matrix_bit_exact():
    from repro.sim.engine import run_downlink_trials

    config = _ber_setup(num_frames=24)
    adaptive = AdaptiveConfig(
        target_rel_width=0.6, min_frames=4, max_frames=24, batch_frames=4
    )
    points = [
        run_downlink_trials(
            config, rng=0, adaptive=adaptive,
            execution=ExecutionPlan(workers=workers, chunk_size=2),
        )
        for workers in (1, 2, 4)
    ]
    reference = points[0]
    for point in points[1:]:
        assert point.bit_errors == reference.bit_errors
        assert point.bits_total == reference.bits_total
        assert point.extra["adaptive"] == reference.extra["adaptive"]


def test_engine_adaptive_batched_plan_bit_exact():
    from repro.sim.engine import run_downlink_trials

    config = _ber_setup(num_frames=24)
    adaptive = AdaptiveConfig(
        target_rel_width=0.6, min_frames=4, max_frames=24, batch_frames=4
    )
    per_frame = run_downlink_trials(config, rng=0, adaptive=adaptive)
    batched = run_downlink_trials(
        config, rng=0, adaptive=adaptive,
        execution=ExecutionPlan(batch_frames=True),
    )
    assert batched.bit_errors == per_frame.bit_errors
    assert batched.bits_total == per_frame.bits_total
    assert batched.extra["adaptive"] == per_frame.extra["adaptive"]


# -- store fingerprints ------------------------------------------------------


def test_adaptive_and_fixed_fingerprints_differ():
    from repro.sim.engine import downlink_trials_work_unit
    from repro.store.fingerprint import fingerprint

    config = _ber_setup()
    spec = SeedSpec.from_rng(0)
    adaptive = AdaptiveConfig(
        target_rel_width=0.25, min_frames=5, max_frames=12, batch_frames=5
    )
    fixed_kind, fixed_unit = downlink_trials_work_unit(config, spec)
    adaptive_kind, adaptive_unit = downlink_trials_work_unit(config, spec, adaptive)
    assert fixed_kind == "downlink-trials"
    assert adaptive_kind == "downlink-trials-adaptive"
    assert fingerprint(fixed_kind, fixed_unit) != fingerprint(
        adaptive_kind, adaptive_unit
    )
    # Different stopping rules are different work.
    other = AdaptiveConfig(
        target_rel_width=0.25, min_frames=5, max_frames=24, batch_frames=5
    )
    _, other_unit = downlink_trials_work_unit(config, spec, other)
    assert fingerprint(adaptive_kind, adaptive_unit) != fingerprint(
        adaptive_kind, other_unit
    )


def test_robustness_adaptive_work_unit_key_only_when_set():
    from repro.impair import ImpairmentSpec
    from repro.sim.robustness import RobustnessConfig, robustness_point_work_unit
    from repro.sim.scenario import default_office_scenario

    config = RobustnessConfig(
        scenario=default_office_scenario(tag_range_m=3.0),
        impairments=ImpairmentSpec.parse("drift:0.5"),
        num_frames=4,
    )
    spec = SeedSpec.from_rng(0)
    fixed_unit = robustness_point_work_unit(config, 0.5, spec)
    assert "adaptive" not in fixed_unit  # pre-PR fingerprints unchanged
    adaptive = AdaptiveConfig(
        target_rel_width=0.5, min_frames=2, max_frames=8, batch_frames=2
    )
    adaptive_unit = robustness_point_work_unit(config, 0.5, spec, adaptive)
    assert adaptive_unit["adaptive"] == adaptive


def test_warm_store_changed_max_frames_recomputes_only_affected_point(tmp_path):
    from repro.sim.engine import run_downlink_trials
    from repro.store import ExperimentStore

    store = ExperimentStore(tmp_path / "cache")
    config_a = _ber_setup()
    config_b = _ber_setup()
    config_b.distance_m = 4.0
    adaptive = AdaptiveConfig(
        target_rel_width=0.6, min_frames=4, max_frames=12, batch_frames=4
    )
    first_a = run_downlink_trials(config_a, rng=0, store=store, adaptive=adaptive)
    first_b = run_downlink_trials(config_b, rng=0, store=store, adaptive=adaptive)
    assert store.session_misses == 2 and store.session_hits == 0

    # Warm: both points hit.
    again_a = run_downlink_trials(config_a, rng=0, store=store, adaptive=adaptive)
    again_b = run_downlink_trials(config_b, rng=0, store=store, adaptive=adaptive)
    assert store.session_hits == 2
    assert (again_a.ber, again_a.extra) == (first_a.ber, first_a.extra)
    assert (again_b.ber, again_b.extra) == (first_b.ber, first_b.extra)

    # A changed cap is a different work unit for point A only.
    wider = AdaptiveConfig(
        target_rel_width=0.6, min_frames=4, max_frames=24, batch_frames=4
    )
    run_downlink_trials(config_a, rng=0, store=store, adaptive=wider)
    assert store.session_misses == 3  # recomputed A under the new rule
    run_downlink_trials(config_b, rng=0, store=store, adaptive=adaptive)
    assert store.session_hits == 3  # B still hits its original entry


def test_adaptive_store_roundtrip_replays(tmp_path):
    from repro.sim.engine import run_downlink_trials
    from repro.store import ExperimentStore

    store = ExperimentStore(tmp_path / "cache")
    config = _ber_setup()
    adaptive = AdaptiveConfig(
        target_rel_width=0.6, min_frames=4, max_frames=12, batch_frames=4
    )
    run_downlink_trials(config, rng=0, store=store, adaptive=adaptive)
    report = store.verify(sample=4, rng=0)
    assert report.ok()
    assert report.recomputed >= 1 and not report.mismatched
