"""The BiScatter backscatter tag: frontends, decoder DSP, modulator, power."""

from repro.tag.frontend import AnalyticTagFrontend, SampledTagFrontend, TagCapture
from repro.tag.decoder_dsp import TagDecoder, DecodedPacket, PeriodEstimate
from repro.tag.modulator import UplinkModulator, ModulationScheme
from repro.tag.power import TagPowerModel, PowerMode
from repro.tag.compute_cost import McuModel, analyze_strategies, macs_per_chirp
from repro.tag.calibration import (
    CalibrationResult,
    estimate_delta_t,
    measure_calibration_beats,
    recalibrate_alphabet,
)
from repro.tag.streaming import DecoderState, StreamingTagDecoder
from repro.tag.architecture import BiScatterTag

__all__ = [
    "AnalyticTagFrontend",
    "SampledTagFrontend",
    "TagCapture",
    "TagDecoder",
    "DecodedPacket",
    "PeriodEstimate",
    "UplinkModulator",
    "ModulationScheme",
    "TagPowerModel",
    "PowerMode",
    "McuModel",
    "analyze_strategies",
    "macs_per_chirp",
    "CalibrationResult",
    "estimate_delta_t",
    "measure_calibration_beats",
    "recalibrate_alphabet",
    "DecoderState",
    "StreamingTagDecoder",
    "BiScatterTag",
]
