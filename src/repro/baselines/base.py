"""Common capability descriptor for Table-1 style comparisons."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SystemCapabilities:
    """Feature matrix row (paper Table 1)."""

    name: str
    uplink_comm: bool
    downlink_comm: bool
    tag_localization: bool
    integrated_sensing_and_comms: bool
    commercial_radar_compatible: bool

    def as_row(self) -> "list[str]":
        """Render as a check/cross table row."""

        def mark(flag: bool) -> str:
            return "yes" if flag else "no"

        return [
            self.name,
            mark(self.uplink_comm),
            mark(self.downlink_comm),
            mark(self.tag_localization),
            mark(self.integrated_sensing_and_comms),
            mark(self.commercial_radar_compatible),
        ]


TABLE1_COLUMNS = [
    "System",
    "Uplink Comm",
    "Downlink Comm",
    "Tag Localization",
    "Integrated Sensing & Comms",
    "Commercial Radar Compat",
]
