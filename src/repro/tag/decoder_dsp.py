"""Tag-side decoding DSP (paper Section 3.2.2, Fig. 6).

Pipeline over the raw ADC stream:

1. **Chirp-period estimation** — a large analysis window over the header
   field; the repeating chirp bursts make the energy envelope periodic at
   ``T_period``, found by autocorrelation (the "FFT across multiple header
   bits" of Fig. 6(c), realized time-domain for robustness).
2. **Slot alignment** — the first signal-energy edge anchors slot 0.
3. **Sync search** — per-slot classification until the sync-field run is
   found; payload begins at the slot after the last sync (Fig. 6(e):
   chirp-aligned windows no larger than a chirp).
4. **Symbol demodulation** — duration-aware single-bin DFT (Goertzel): each
   CSSK hypothesis is scored by correlating the DC-removed slot samples
   against its beat frequency over *its own* chirp duration, normalized so
   scores are duration-invariant.  This is the matched filter for the
   "tone of known duration" hypothesis set and is exactly the per-point
   Goertzel evaluation the paper recommends for the MCU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.core.cssk import CsskAlphabet
from repro.core.packet import PacketFields
from repro.errors import SyncError
from repro.tag.frontend import TagCapture


@dataclass(frozen=True)
class PeriodEstimate:
    """Result of chirp-period estimation."""

    period_s: float
    first_chirp_start_s: float
    confidence: float


@dataclass(frozen=True)
class DecodedPacket:
    """Everything the tag recovered from one downlink packet."""

    bits: np.ndarray
    symbols: list[int]
    measured_beats_hz: np.ndarray
    period: PeriodEstimate
    payload_start_slot: int
    num_sync_slots_seen: int


class TagDecoder:
    """Decodes CSSK downlink packets from tag ADC captures.

    Parameters
    ----------
    alphabet:
        The CSSK alphabet (shared radar/tag configuration).
    fields:
        Expected preamble sizing.
    window_fraction:
        Fraction of each hypothesis' chirp duration used for correlation
        (slightly below 1 tolerates edge transients; Fig. 6(e)).
    clock_offset_ppm:
        Tag oscillator error relative to nominal.  The tag clocks its ADC
        (and hence its notion of every beat frequency) from the same
        drifted oscillator, so a ppm offset skews the whole hypothesis
        grid by ``1 / (1 + ppm * 1e-6)`` — small CFO costs a little
        correlation margin, CFO beyond one beat bin makes neighbouring
        symbols indistinguishable.  0 (the default) is bit-identical to
        the pre-drift decoder.
    """

    def __init__(
        self,
        alphabet: CsskAlphabet,
        *,
        fields: PacketFields | None = None,
        window_fraction: float = 1.0,
        clock_offset_ppm: float = 0.0,
    ) -> None:
        if not 0.1 < window_fraction <= 1.0:
            raise ValueError(f"window_fraction must be in (0.1, 1], got {window_fraction}")
        if not np.isfinite(clock_offset_ppm) or clock_offset_ppm * 1e-6 <= -1.0:
            raise ValueError(
                f"clock_offset_ppm must be finite and > -1e6, got {clock_offset_ppm}"
            )
        self.alphabet = alphabet
        self.fields = fields or PacketFields()
        self.window_fraction = window_fraction
        self.clock_offset_ppm = clock_offset_ppm

    # ------------------------------------------------------------------ period

    def estimate_period(
        self,
        capture: TagCapture,
        *,
        min_period_s: float | None = None,
        max_period_s: float | None = None,
        snap_tolerance: float = 0.08,
    ) -> PeriodEstimate:
        """Estimate the chirp period and first chirp start from the stream.

        Autocorrelates the smoothed energy envelope of the *header region*
        (the first ``header_repeats`` nominal periods, where the repeating
        header chirps make the envelope cleanly periodic — the "FFT across
        multiple header bits" of the paper, realized time-domain).  The
        protocol fixes the chirp period, so when the raw estimate lands
        within ``snap_tolerance`` of the configured period it snaps to the
        exact protocol value; the estimate still serves to *verify* the
        radar is transmitting the expected framing.
        """
        fs = capture.sample_rate_hz
        x = np.asarray(capture.samples, dtype=float)
        if x.size < 8:
            raise SyncError("capture too short for period estimation")
        nominal = self.alphabet.chirp_period_s
        first_start = self._first_energy_edge(x, fs)
        # Restrict to the header field: periodicity there is unpolluted by
        # the mixed-duration payload chirps.
        begin = int(first_start * fs)
        span = int((self.fields.header_repeats + 0.5) * nominal * fs)
        segment = x[begin : begin + span] if span <= x.size - begin else x[begin:]
        if segment.size < 8:
            raise SyncError("capture too short after the first energy edge")
        energy = segment**2
        # Smooth away the beat-tone ripple (periods of a few us) while
        # keeping the chirp on/off envelope (tens of us).
        smooth_n = max(int(0.05 * nominal * fs), 1)
        kernel = np.ones(smooth_n) / smooth_n
        envelope = np.convolve(energy, kernel, mode="same")
        envelope = envelope - envelope.mean()

        low = 0.7 * nominal if min_period_s is None else min_period_s
        high = 1.3 * nominal if max_period_s is None else max_period_s
        min_lag = max(int(low * fs), 1)
        max_lag = min(int(high * fs), envelope.size - 2)
        if max_lag <= min_lag:
            raise SyncError(
                f"capture of {x.size} samples cannot resolve periods in [{low}, {high}]s"
            )
        spectrum = np.fft.rfft(envelope, n=2 * envelope.size)
        autocorr = np.fft.irfft(np.abs(spectrum) ** 2)[: envelope.size]
        window = autocorr[min_lag : max_lag + 1]
        best = int(np.argmax(window))
        best_lag = min_lag + best
        if 0 < best < window.size - 1:
            from repro.utils.dsp import parabolic_peak_offset

            best_lag = best_lag + parabolic_peak_offset(
                window[best - 1], window[best], window[best + 1]
            )
        confidence = float(window.max() / autocorr[0]) if autocorr[0] > 0 else 0.0
        period = best_lag / fs
        if abs(period - nominal) <= snap_tolerance * nominal:
            period = nominal
        return PeriodEstimate(
            period_s=float(period),
            first_chirp_start_s=first_start,
            confidence=confidence,
        )

    def _first_energy_edge(self, x: np.ndarray, fs: float) -> float:
        """Time of the first sustained signal-energy rise."""
        block = max(int(0.05 * self.alphabet.chirp_period_s * fs), 4)
        num_blocks = x.size // block
        if num_blocks < 2:
            return 0.0
        blocks = x[: num_blocks * block].reshape(num_blocks, block)
        power = np.var(blocks, axis=1)
        floor = np.median(power)
        peak = power.max()
        if peak <= floor * 4.0:
            return 0.0
        threshold = floor + 0.25 * (peak - floor)
        above = np.where(power > threshold)[0]
        if above.size == 0:
            return 0.0
        return float(above[0] * block / fs)

    # ------------------------------------------------------------------ symbols

    def _hypothesis_table(self, fs: float) -> "list[tuple[str, int | None, float, int]]":
        """(kind, symbol, beat_hz, window_samples) for every hypothesis.

        A drifted tag clock (``clock_offset_ppm``) makes the ADC run fast
        or slow, so a true tone at ``f`` lands at ``f / (1 + delta)`` on
        the tag's sample grid — the whole hypothesis bank skews by that
        factor.  With zero offset the skew is exactly 1.0 and the table is
        unchanged.
        """
        skew = 1.0 / (1.0 + self.clock_offset_ppm * 1e-6)
        table: "list[tuple[str, int | None, float, int]]" = []
        header_n = int(round(self.window_fraction * self.alphabet.header_duration_s * fs))
        table.append(("header", None, self.alphabet.header_beat_hz * skew, max(header_n, 4)))
        sync_n = int(round(self.window_fraction * self.alphabet.sync_duration_s * fs))
        table.append(("sync", None, self.alphabet.sync_beat_hz * skew, max(sync_n, 4)))
        for symbol, beat in enumerate(self.alphabet.data_beats_hz):
            duration = self.alphabet.data_symbol_duration_s(symbol)
            n = max(int(round(self.window_fraction * duration * fs)), 4)
            table.append(("data", symbol, beat * skew, n))
        return table

    @staticmethod
    def _slot_projector(beat_hz: float, n_on: int, n_slot: int, fs: float) -> np.ndarray:
        """(5 x n_slot) orthonormal projector for one CSSK hypothesis.

        The hypothesis signal model over a whole slot is a *gated* tone on
        a *gated* DC pedestal riding on an arbitrary slow baseline:
        ``x[n] = b0 + b1 n + (A_dc + A_c cos(w n) + A_s sin(w n)) *
        rect[n < n_on]`` plus noise.  The first two (full-slot constant and
        ramp) basis vectors absorb video-amplifier offset and thermal
        wander so they cannot masquerade as pedestal evidence; the gated
        trio rewards BOTH matching the beat frequency and matching the
        chirp *duration* (a wrong-duration hypothesis leaves pedestal-step
        energy unexplained), and is phase-exact for real tones (no
        negative-frequency image bias).  ``||W @ x||^2`` is the GLRT
        statistic; model dimension is equal for all hypotheses, and the
        nuisance (baseline) terms are common, so scores compare directly.
        """
        indices = np.arange(n_on)
        omega = 2.0 * np.pi * beat_hz / fs
        basis = np.zeros((n_slot, 5))
        basis[:, 0] = 1.0
        basis[:, 1] = np.linspace(-1.0, 1.0, n_slot)
        basis[:n_on, 2] = 1.0
        basis[:n_on, 3] = np.cos(omega * indices)
        basis[:n_on, 4] = np.sin(omega * indices)
        q, _ = np.linalg.qr(basis)
        # Drop the two baseline directions (identical across hypotheses):
        # the score is the energy explained BEYOND any offset/ramp.
        return q[:, 2:].T.copy()

    def _scoring_cache(self, fs: float) -> dict:
        """Vectorized hypothesis bank for sample rate ``fs``.

        Builds, once per rate, an (H x 3 x N_slot) stack of gated-model
        projectors so one tensor product scores every hypothesis — the
        simulator-side stand-in for the MCU's per-candidate Goertzel
        evaluations plus an envelope-duration check.
        """
        cache = getattr(self, "_score_cache", None)
        if cache is not None and cache["fs"] == fs:
            return cache
        table = self._hypothesis_table(fs)
        n_slot = max(int(round(self.alphabet.chirp_period_s * fs)), 4)
        projectors = np.zeros((len(table), 3, n_slot))
        lengths = np.zeros(len(table), dtype=int)
        for row, (_, _, beat, n_on) in enumerate(table):
            n_eff = min(n_on, n_slot)
            projectors[row] = _cached_slot_projector(
                float(beat), int(n_eff), int(n_slot), float(fs)
            )
            lengths[row] = n_eff
        cache = {
            "fs": fs,
            "table": table,
            "projectors": projectors,
            "lengths": lengths,
            "n_slot": n_slot,
        }
        self._score_cache = cache
        return cache

    def score_slot(
        self, slot_samples: np.ndarray, fs: float
    ) -> "list[tuple[str, int | None, float, float]]":
        """Score every hypothesis on one slot's samples.

        Returns (kind, symbol, beat_hz, score) tuples; score is the
        explained energy of the hypothesis' gated DC + tone model over the
        slot (see :meth:`_slot_projector`).  All hypotheses span the same
        slot with the same model dimension, so scores compare directly.
        """
        x = np.asarray(slot_samples, dtype=float)
        cache = self._scoring_cache(fs)
        table = cache["table"]
        n_slot = cache["n_slot"]
        if x.size >= n_slot:
            window = x[:n_slot]
        else:
            window = np.zeros(n_slot)
            window[: x.size] = x
        components = cache["projectors"] @ window  # (H, 3)
        scores = np.sum(components**2, axis=1)
        results = []
        for row, (kind, symbol, beat, _) in enumerate(table):
            results.append((kind, symbol, beat, float(scores[row])))
        return results

    def classify_slot(self, slot_samples: np.ndarray, fs: float) -> tuple[str, int | None, float]:
        """Best hypothesis (kind, symbol, beat) for one slot."""
        scores = self.score_slot(slot_samples, fs)
        kind, symbol, beat, _ = max(scores, key=lambda entry: entry[3])
        return kind, symbol, beat

    def demodulate_data_slot(self, slot_samples: np.ndarray, fs: float) -> tuple[int, float]:
        """ML data symbol for a slot known to carry payload.

        Restricting the hypothesis set to data symbols (the packet layer
        guarantees payload slots carry data) is both faster and the correct
        ML decision.
        """
        scores = [
            entry for entry in self.score_slot(slot_samples, fs) if entry[0] == "data"
        ]
        kind, symbol, beat, _ = max(scores, key=lambda entry: entry[3])
        return int(symbol), float(beat)

    # ------------------------------------------------------------------ batched

    def _window_matrix(self, slot_samples, n_slot: int) -> np.ndarray:
        """Stack slot sample rows into a ``(batch, n_slot)`` window matrix.

        Accepts a 2-D array (uniform row length) or a sequence of 1-D
        arrays (possibly different lengths); every row is padded/truncated
        to ``n_slot`` exactly as :meth:`score_slot` does.  An empty batch
        is a caller error (mirrors :class:`~repro.sim.executor.ChunkTiming`
        rejecting zero-trial chunks).
        """
        if isinstance(slot_samples, np.ndarray) and slot_samples.ndim == 2:
            x = np.asarray(slot_samples, dtype=float)
            if x.shape[0] == 0:
                raise ValueError("slot batch must contain at least one slot")
            if x.shape[1] >= n_slot:
                return np.ascontiguousarray(x[:, :n_slot])
            windows = np.zeros((x.shape[0], n_slot))
            windows[:, : x.shape[1]] = x
            return windows
        rows = list(slot_samples)
        if not rows:
            raise ValueError("slot batch must contain at least one slot")
        windows = np.zeros((len(rows), n_slot))
        for index, row in enumerate(rows):
            x = np.asarray(row, dtype=float)
            if x.ndim != 1:
                raise ValueError(
                    f"slot batch rows must be 1-D, row {index} has shape {x.shape}"
                )
            n = min(x.size, n_slot)
            windows[index, :n] = x[:n]
        return windows

    def _score_windows(self, windows: np.ndarray, cache: dict) -> np.ndarray:
        """(batch, num_hypotheses) score matrix for padded slot windows.

        The stacked product keeps an explicit trailing column axis
        (``matmul(P, W[:, None, :, None])``) so BLAS applies the *same*
        per-slice matrix-vector kernel as the per-frame ``P @ w`` — scores
        are bitwise equal to :meth:`score_slot` row by row, which keeps
        every argmax decision (and the golden BER pins) identical.
        """
        components = np.matmul(cache["projectors"], windows[:, None, :, None])[..., 0]
        return np.sum(components**2, axis=2)

    def score_slots(self, slot_samples, fs: float) -> np.ndarray:
        """Score every hypothesis on a batch of slots.

        ``slot_samples`` is ``(batch, n)`` (or a sequence of 1-D arrays);
        returns a ``(batch, num_hypotheses)`` array whose row ``b`` equals,
        bitwise, the scores :meth:`score_slot` reports for row ``b``.
        Hypothesis order matches the table exposed via
        :meth:`score_slot` (header, sync, then data symbols ascending).
        """
        cache = self._scoring_cache(fs)
        windows = self._window_matrix(slot_samples, cache["n_slot"])
        return self._score_windows(windows, cache)

    def classify_slots(self, slot_samples, fs: float) -> "list[tuple[str, int | None, float]]":
        """Batched :meth:`classify_slot`: best (kind, symbol, beat) per slot."""
        cache = self._scoring_cache(fs)
        scores = self.score_slots(slot_samples, fs)
        table = cache["table"]
        best = np.argmax(scores, axis=1)  # first max, like max() on the table
        return [
            (table[row][0], table[row][1], table[row][2]) for row in best
        ]

    def demodulate_data_slots(self, slot_samples, fs: float) -> "tuple[np.ndarray, np.ndarray]":
        """Batched :meth:`demodulate_data_slot` over payload slots.

        Returns ``(symbols, beats)`` arrays; entry ``b`` is bit-identical
        to ``demodulate_data_slot(slot_samples[b], fs)``.
        """
        cache = self._scoring_cache(fs)
        scores = self.score_slots(slot_samples, fs)
        data_rows = np.array(
            [row for row, entry in enumerate(cache["table"]) if entry[0] == "data"]
        )
        data_symbols = np.array(
            [cache["table"][row][1] for row in data_rows], dtype=int
        )
        data_beats = np.array([cache["table"][row][2] for row in data_rows])
        pick = np.argmax(scores[:, data_rows], axis=1)
        return data_symbols[pick], data_beats[pick]

    def decode_aligned_batch(
        self,
        captures: "list[TagCapture]",
        *,
        num_payload_symbols: int,
        skip_slots: int | None = None,
    ) -> "list[DecodedPacket]":
        """Batched :meth:`decode_aligned` over equal-length captures.

        Packet ``b`` of the result is bit-identical (bits, symbols,
        measured beats, metadata) to ``decode_aligned(captures[b], ...)``:
        each payload slot's windows are scored for the whole batch in one
        stacked product instead of one Python-level scoring pass per slot
        per frame.  Raises ``ValueError`` for an empty batch or a ragged
        one (captures must share sample rate and sample count — the
        executor's per-chunk trials always do).
        """
        if num_payload_symbols < 1:
            raise ValueError(f"num_payload_symbols must be >= 1, got {num_payload_symbols}")
        if not captures:
            raise ValueError("decode_aligned_batch requires at least one capture")
        fs = captures[0].sample_rate_hz
        size = captures[0].samples.size
        for index, capture in enumerate(captures):
            if capture.sample_rate_hz != fs or capture.samples.size != size:
                raise ValueError(
                    f"ragged capture batch: capture {index} has "
                    f"{capture.samples.size} samples at {capture.sample_rate_hz} Hz, "
                    f"capture 0 has {size} at {fs} Hz"
                )
        start_slot = self.fields.preamble_length if skip_slots is None else skip_slots
        period = PeriodEstimate(
            period_s=self.alphabet.chirp_period_s,
            first_chirp_start_s=0.0,
            confidence=1.0,
        )
        stacked = np.stack([np.asarray(c.samples, dtype=float) for c in captures])
        cache = self._scoring_cache(fs)
        n_slot = cache["n_slot"]
        batch = len(captures)
        # One preallocated (K*batch, n_slot) window matrix, filled slot by
        # slot: the zero initialization doubles as the short-slot padding
        # the per-capture oracle applies.
        windows_full = np.zeros((num_payload_symbols * batch, n_slot))
        num_blocks = 0
        for k in range(start_slot, start_slot + num_payload_symbols):
            begin = int(round(k * self.alphabet.chirp_period_s * fs))
            end = int(round((k + 1) * self.alphabet.chirp_period_s * fs))
            if begin >= size:
                break
            width = min(end, size) - begin
            if width < 4:
                break
            rows = windows_full[num_blocks * batch : (num_blocks + 1) * batch]
            if width >= n_slot:
                rows[:] = stacked[:, begin : begin + n_slot]
            else:
                rows[:, :width] = stacked[:, begin : begin + width]
            num_blocks += 1
        if num_blocks:
            windows = windows_full[: num_blocks * batch]
            data_rows = np.array(
                [row for row, entry in enumerate(cache["table"]) if entry[0] == "data"]
            )
            data_symbols = np.array(
                [cache["table"][row][1] for row in data_rows], dtype=int
            )
            data_beats = np.array([cache["table"][row][2] for row in data_rows])
            # Only the data-hypothesis scores feed the argmax, and the
            # stacked matmul computes each hypothesis slice independently,
            # so restricting the projector stack to the data rows yields
            # the same scores — bitwise — as scoring all rows and slicing.
            data_cache = {"projectors": cache["projectors"][data_rows]}
            scores = self._score_windows(windows, data_cache)
            pick = np.argmax(scores, axis=1)
            symbols_grid = data_symbols[pick].reshape(num_blocks, batch)
            beats_grid = data_beats[pick].reshape(num_blocks, batch)
        else:
            symbols_grid = np.empty((0, len(captures)), dtype=int)
            beats_grid = np.empty((0, len(captures)))
        bits_table = np.stack(
            [
                self.alphabet.bits_for_symbol(s)
                for s in range(self.alphabet.num_data_symbols)
            ]
        )
        # Column-major copies so the per-packet views below are cheap;
        # ``tolist`` yields the same Python ints / float64 values the
        # per-capture oracle accumulates one slot at a time.
        symbols_by_capture = np.ascontiguousarray(symbols_grid.T)
        beats_by_capture = np.ascontiguousarray(beats_grid.T)
        packets: "list[DecodedPacket]" = []
        for b in range(len(captures)):
            symbols = symbols_by_capture[b].tolist()
            bits = (
                bits_table[symbols_by_capture[b]].reshape(-1)
                if symbols
                else np.empty(0, dtype=np.uint8)
            )
            packets.append(
                DecodedPacket(
                    bits=bits,
                    symbols=symbols,
                    measured_beats_hz=beats_by_capture[b].copy(),
                    period=period,
                    payload_start_slot=start_slot,
                    num_sync_slots_seen=self.fields.sync_repeats,
                )
            )
        return packets

    # ------------------------------------------------------------------ packets

    def _fine_align(
        self,
        capture: TagCapture,
        period: PeriodEstimate,
        *,
        coarse_span: int | None = None,
    ) -> PeriodEstimate:
        """Sample-level refinement of the first-chirp start.

        The energy-edge detector is block-granular and noisy at range; this
        step slides the slot grid across +/- a quarter period (coarse, then
        +/-2-sample refine) and keeps the offset maximizing the summed
        header-hypothesis score over the first few slots (slot 0 is a
        header chirp by construction of the packet preamble).  Integer-slot
        misalignment is irrelevant here — the preamble matched search in
        :meth:`decode` absorbs whole-slot shifts.
        """
        fs = capture.sample_rate_hz
        base = int(round(period.first_chirp_start_s * fs))
        slot_n = int(round(period.period_s * fs))
        average_slots = min(self.fields.header_repeats, 4)

        def alignment_score(offset: int) -> float:
            total = 0.0
            valid = 0
            for k in range(average_slots):
                begin = base + offset + k * slot_n
                if begin < 0 or begin + 4 > capture.samples.size:
                    continue
                window = capture.samples[begin : begin + slot_n]
                scores = self.score_slot(window, fs)
                total += next(s for kind, _, _, s in scores if kind == "header")
                valid += 1
            return total if valid else -np.inf

        if coarse_span is None:
            coarse_span = max(slot_n // 4, 8)
        coarse_offsets = range(-coarse_span, coarse_span + 1, 2)
        best_offset = max(coarse_offsets, key=alignment_score)
        fine_offsets = range(best_offset - 2, best_offset + 3)
        best_offset = max(fine_offsets, key=alignment_score)
        return PeriodEstimate(
            period_s=period.period_s,
            first_chirp_start_s=(base + best_offset) / fs,
            confidence=period.confidence,
        )

    def _slot_window(self, capture: TagCapture, start_s: float, period_s: float, k: int) -> np.ndarray:
        fs = capture.sample_rate_hz
        begin = int(round((start_s + k * period_s) * fs))
        end = int(round((start_s + (k + 1) * period_s) * fs))
        if begin >= capture.samples.size:
            return np.empty(0)
        return capture.samples[begin : min(end, capture.samples.size)]

    def decode(
        self,
        capture: TagCapture,
        *,
        num_payload_symbols: int | None = None,
        max_search_slots: int = 64,
        reacquisitions: int = 0,
    ) -> DecodedPacket:
        """Full receive chain: period estimate, sync search, payload demod.

        Parameters
        ----------
        num_payload_symbols:
            Expected payload length; ``None`` decodes until the capture
            ends.
        max_search_slots:
            Bound on the preamble search (guards against captures with no
            sync field).
        reacquisitions:
            Widened-window retries after a :class:`SyncError`.  Each retry
            doubles the preamble search span and relaxes the period-search
            bounds; 0 (the default) is the classic single-shot behaviour,
            bit-identical to before this knob existed.
        """
        if reacquisitions < 0:
            raise ValueError(f"reacquisitions must be >= 0, got {reacquisitions}")
        attempt = 0
        while True:
            try:
                return self._decode_attempt(
                    capture,
                    num_payload_symbols=num_payload_symbols,
                    max_search_slots=max_search_slots * (2**attempt),
                    widen=attempt,
                )
            except SyncError:
                if attempt >= reacquisitions:
                    raise
                attempt += 1
                from repro import obs
                from repro.obs import runtime as _obs_runtime

                if _obs_runtime._enabled:
                    obs.inc("impair.sync_reacquisitions")
                    obs.log("tag.decoder.reacquire", attempt=attempt)

    def _decode_attempt(
        self,
        capture: TagCapture,
        *,
        num_payload_symbols: int | None,
        max_search_slots: int,
        widen: int = 0,
    ) -> DecodedPacket:
        """One synchronization + demodulation pass.

        ``widen > 0`` marks a reacquisition attempt: the period search
        opens from the nominal +/-30% band to [0.5x, 2x] with a relaxed
        snap tolerance, trading false-lock margin for a chance to recover
        a badly impaired preamble.
        """
        if widen:
            period = self.estimate_period(
                capture,
                min_period_s=0.5 * self.alphabet.chirp_period_s,
                max_period_s=2.0 * self.alphabet.chirp_period_s,
                snap_tolerance=0.2,
            )
        else:
            period = self.estimate_period(capture)
        fs = capture.sample_rate_hz
        period = self._fine_align(capture, period)

        # Matched preamble search at slot granularity: slide the known
        # [header x H][sync x S] pattern over the per-slot header/sync
        # scores and take the best-aligned payload start.  Far more robust
        # at low SNR than classifying slots one at a time.
        header_scores: list[float] = []
        sync_scores: list[float] = []
        slot = 0
        while slot < max_search_slots:
            samples = self._slot_window(capture, period.first_chirp_start_s, period.period_s, slot)
            if samples.size < 4:
                break
            scores = self.score_slot(samples, fs)
            header_scores.append(next(s for kind, _, _, s in scores if kind == "header"))
            sync_scores.append(next(s for kind, _, _, s in scores if kind == "sync"))
            slot += 1
        h_rep = self.fields.header_repeats
        s_rep = self.fields.sync_repeats
        preamble = self.fields.preamble_length
        if len(header_scores) < preamble:
            raise SyncError(
                f"capture holds only {len(header_scores)} searchable slots, "
                f"fewer than the {preamble}-slot preamble"
            )
        best_start = None
        best_score = -np.inf
        for candidate in range(preamble, len(header_scores) + 1):
            header_part = header_scores[candidate - preamble : candidate - s_rep]
            sync_part = sync_scores[candidate - s_rep : candidate]
            score = float(np.mean(header_part) + np.mean(sync_part))
            if score > best_score:
                best_score = score
                best_start = candidate
        payload_start = best_start
        sync_seen = s_rep
        if payload_start is None:
            raise SyncError(
                f"no preamble alignment found within {max_search_slots} slots"
            )

        symbols: list[int] = []
        beats: list[float] = []
        slot = payload_start
        while True:
            if num_payload_symbols is not None and len(symbols) >= num_payload_symbols:
                break
            samples = self._slot_window(capture, period.first_chirp_start_s, period.period_s, slot)
            if samples.size < 4:
                break
            symbol, beat = self.demodulate_data_slot(samples, fs)
            symbols.append(symbol)
            beats.append(beat)
            slot += 1

        bits = (
            np.concatenate([self.alphabet.bits_for_symbol(s) for s in symbols])
            if symbols
            else np.empty(0, dtype=np.uint8)
        )
        return DecodedPacket(
            bits=bits,
            symbols=symbols,
            measured_beats_hz=np.asarray(beats),
            period=period,
            payload_start_slot=payload_start,
            num_sync_slots_seen=sync_seen,
        )

    def decode_aligned(
        self,
        capture: TagCapture,
        *,
        num_payload_symbols: int,
        skip_slots: int | None = None,
    ) -> DecodedPacket:
        """Decode with genie-aided alignment (skip period/sync estimation).

        Used by benches isolating *symbol-level* BER from synchronization
        effects, and by the ISAC session when the tag has already locked to
        the radar's timing in a previous packet.
        """
        if num_payload_symbols < 1:
            raise ValueError(f"num_payload_symbols must be >= 1, got {num_payload_symbols}")
        start_slot = self.fields.preamble_length if skip_slots is None else skip_slots
        period = PeriodEstimate(
            period_s=self.alphabet.chirp_period_s,
            first_chirp_start_s=0.0,
            confidence=1.0,
        )
        fs = capture.sample_rate_hz
        symbols: list[int] = []
        beats: list[float] = []
        for k in range(start_slot, start_slot + num_payload_symbols):
            samples = self._slot_window(capture, 0.0, self.alphabet.chirp_period_s, k)
            if samples.size < 4:
                break
            symbol, beat = self.demodulate_data_slot(samples, fs)
            symbols.append(symbol)
            beats.append(beat)
        bits = (
            np.concatenate([self.alphabet.bits_for_symbol(s) for s in symbols])
            if symbols
            else np.empty(0, dtype=np.uint8)
        )
        return DecodedPacket(
            bits=bits,
            symbols=symbols,
            measured_beats_hz=np.asarray(beats),
            period=period,
            payload_start_slot=start_slot,
            num_sync_slots_seen=self.fields.sync_repeats,
        )


@lru_cache(maxsize=1024)
def _cached_slot_projector(
    beat_hz: float, n_on: int, n_slot: int, fs: float
) -> np.ndarray:
    """Process-wide memo of :meth:`TagDecoder._slot_projector`.

    The projector is a pure function of its four scalar arguments (the QR
    factorization is deterministic), so identical keys always reproduce
    the identical array — decoders rebuilt chunk after chunk (the
    executor recreates its DSP objects per chunk) skip the repeated QR
    work.  Callers copy rows into their own stacks; the cached array is
    frozen read-only as a guard.
    """
    projector = TagDecoder._slot_projector(beat_hz, n_on, n_slot, fs)
    projector.setflags(write=False)
    return projector
