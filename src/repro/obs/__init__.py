"""Unified observability: structured logs, metrics, and span tracing.

One import gives instrumented code the whole surface::

    from repro import obs

    obs.log("store.hit", fingerprint=fp[:12])          # JSON-lines / console
    obs.inc("store.hits")                              # process-safe counter
    obs.observe("executor.chunk_seconds", elapsed)     # fixed-bucket histogram
    with obs.span("pool.chunk", chunk=i):              # Chrome-trace span
        ...

Everything is **off by default** and near-free while off: each helper
checks one module-level flag and returns before evaluating anything
(``benchmarks/bench_obs_overhead.py`` holds that to < 2% on a real
sweep).  Enable via the environment (``REPRO_LOG=json|console``,
``REPRO_LOG_FILE=...``, ``REPRO_TRACE_DIR=...``), the CLI
(``--log-json`` / ``--profile`` / ``--trace-dir``), or
:func:`obs.configure`.

Telemetry is strictly one-way: events carry wall-clock timestamps, but
nothing observability produces ever flows into results, seeds, or
fingerprints — the bit-exact determinism contract of
:mod:`repro.sim.executor` holds with everything enabled.

Module map: :mod:`repro.obs.runtime` (state and configuration),
:mod:`repro.obs.events` (the JSON-lines/console event log),
:mod:`repro.obs.metrics` (counters, gauges, histograms, cross-process
merge), :mod:`repro.obs.tracing` (spans, trace files, ``obs export``),
:mod:`repro.obs.exporter` (HTTP ``/metrics`` Prometheus exposition +
``/healthz`` + ``/status``), :mod:`repro.obs.manifest` (the durable
per-run manifest ledger), :mod:`repro.obs.report` (``repro obs
runs/report/diff`` rendering).
"""

from repro.obs.runtime import (
    LOG_ENV,
    LOG_FILE_ENV,
    RUN_ID_ENV,
    TRACE_DIR_ENV,
    apply_worker_config,
    configure,
    configure_from_env,
    enabled,
    reset,
    run_id,
    tracing_enabled,
    worker_config,
)
from repro.obs.events import log
from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    inc,
    merge_into_registry,
    merge_snapshots,
    observe,
    registry,
    set_gauge,
    snapshot,
)
from repro.obs.tracing import (
    export_run,
    instant,
    list_runs,
    metrics_snapshot_path,
    read_trace_events,
    span,
    trace_path,
    write_metrics_snapshot,
)
# Submodules with their own namespaced APIs (obs.exporter.render_...,
# obs.manifest.begin, ...).  Imported last: manifest/exporter depend on
# runtime/metrics above and lazily reach into repro.store only at write
# time, so this stays cycle-free.
from repro.obs import exporter, manifest  # noqa: E402  (module exports)
from repro.obs.exporter import MetricsExporter, render_exposition
from repro.obs.manifest import MANIFEST_DIR_ENV, MANIFEST_SCHEMA_VERSION

__all__ = [
    "LOG_ENV",
    "LOG_FILE_ENV",
    "RUN_ID_ENV",
    "TRACE_DIR_ENV",
    "apply_worker_config",
    "configure",
    "configure_from_env",
    "enabled",
    "reset",
    "run_id",
    "tracing_enabled",
    "worker_config",
    "log",
    "DEFAULT_SECONDS_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
    "inc",
    "merge_into_registry",
    "merge_snapshots",
    "observe",
    "registry",
    "set_gauge",
    "snapshot",
    "MANIFEST_DIR_ENV",
    "MANIFEST_SCHEMA_VERSION",
    "MetricsExporter",
    "exporter",
    "manifest",
    "render_exposition",
    "export_run",
    "instant",
    "list_runs",
    "metrics_snapshot_path",
    "read_trace_events",
    "span",
    "trace_path",
    "write_metrics_snapshot",
]
