"""FMCW chirp parameterization (paper Section 2.3, Eqs. 1-5).

A chirp is a linear frequency sweep characterized by its start frequency
``f0``, bandwidth ``B``, and duration ``T_chirp``; the *chirp slope* is
``alpha = B / T_chirp`` (Hz/s).  BiScatter's CSSK modulation keeps ``B``
fixed (preserving range resolution, Eq. 5) and varies ``T_chirp`` (hence
the slope) to encode downlink symbols.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError
from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class ChirpParameters:
    """Immutable description of one FMCW chirp.

    Parameters
    ----------
    start_frequency_hz:
        Carrier frequency at the beginning of the sweep (``f0`` in Eq. 1).
    bandwidth_hz:
        Total swept bandwidth ``B``.
    duration_s:
        Sweep duration ``T_chirp``.
    amplitude:
        Peak amplitude ``A_t`` of the transmitted cosine (linear volts,
        normalized so 1.0 corresponds to the radar's full output power).
    """

    start_frequency_hz: float
    bandwidth_hz: float
    duration_s: float
    amplitude: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive("start_frequency_hz", self.start_frequency_hz)
        ensure_positive("bandwidth_hz", self.bandwidth_hz)
        ensure_positive("duration_s", self.duration_s)
        ensure_positive("amplitude", self.amplitude)

    @property
    def slope_hz_per_s(self) -> float:
        """Chirp slope ``alpha = B / T_chirp`` (Hz/s)."""
        return self.bandwidth_hz / self.duration_s

    @property
    def center_frequency_hz(self) -> float:
        """Mid-sweep carrier frequency."""
        return self.start_frequency_hz + self.bandwidth_hz / 2.0

    @property
    def end_frequency_hz(self) -> float:
        """Carrier frequency at the end of the sweep."""
        return self.start_frequency_hz + self.bandwidth_hz

    def beat_frequency_for_range(self, range_m: float) -> float:
        """IF beat frequency for a reflector at ``range_m`` (Eq. 3).

        ``f_IF = 2 * alpha * r / c``.
        """
        if range_m < 0:
            raise ConfigurationError(f"range_m must be non-negative, got {range_m!r}")
        return 2.0 * self.slope_hz_per_s * range_m / SPEED_OF_LIGHT

    def range_for_beat_frequency(self, beat_hz: float) -> float:
        """Inverse of :meth:`beat_frequency_for_range`."""
        if beat_hz < 0:
            raise ConfigurationError(f"beat_hz must be non-negative, got {beat_hz!r}")
        return beat_hz * SPEED_OF_LIGHT / (2.0 * self.slope_hz_per_s)

    def max_unambiguous_range(self, sample_rate_hz: float) -> float:
        """Maximum unambiguous range for a given IF sample rate (Eq. 4).

        ``R_max = f_s * c * T_chirp / (2 * B)`` — for a complex (I/Q)
        receiver whose usable IF band is the full sample rate.  Real-sampled
        receivers see half of this.
        """
        ensure_positive("sample_rate_hz", sample_rate_hz)
        return sample_rate_hz * SPEED_OF_LIGHT * self.duration_s / (2.0 * self.bandwidth_hz)

    @property
    def range_resolution_m(self) -> float:
        """Range resolution ``R_res = c / (2 * B)`` (Eq. 5)."""
        return SPEED_OF_LIGHT / (2.0 * self.bandwidth_hz)

    def round_trip_delay(self, range_m: float) -> float:
        """Two-way propagation delay ``tau = 2 r / c`` to a reflector."""
        if range_m < 0:
            raise ConfigurationError(f"range_m must be non-negative, got {range_m!r}")
        return 2.0 * range_m / SPEED_OF_LIGHT

    def with_duration(self, duration_s: float) -> "ChirpParameters":
        """Same chirp with a different duration (the CSSK symbol knob)."""
        return replace(self, duration_s=duration_s)

    def with_amplitude(self, amplitude: float) -> "ChirpParameters":
        """Same chirp scaled to a different amplitude."""
        return replace(self, amplitude=amplitude)
