"""Adaptive Monte-Carlo — >=5x wall-clock cut on a fig13-style sweep.

A fixed ``num_frames`` budget spends as much on trivially-clean
operating points as on the error floors: on the fig13 distance ladder
every near point decodes perfectly, yet the fixed sweep still burns the
full budget there.  The adaptive driver stops a clean point after
``min_frames`` zero-error frames (the 95% Wilson upper bound is already
below the floor of interest) and spends the budget only where the CI is
actually wide.

The timed comparison runs the clean part of the ladder (3-7 m, where
the paper's fig13 reports its working region) twice on one worker —
fixed ``MAX_FRAMES`` per point vs :class:`AdaptiveConfig` with the
identical cap and confidence — and gates a >=5x wall-clock speedup *at
equal confidence*: every adaptive stop is sanctioned by the rule
(zero-errors / ci-met / cap), and each fixed-budget BER estimate must
lie inside the adaptive point's final interval, so the cheap run never
contradicts the expensive one.  An error-floor point past the working
range (8 m) is computed once, untimed, to show the complementary
behaviour: where errors do accumulate the driver runs to the full cap,
i.e. the saving comes from clean points only, never from starving a
floor of evidence.

Both modes use the batched DSP path, so the comparison isolates the
sampling policy rather than kernel differences.  Timed best-of-N for
the usual shared-runner jitter reasons.
"""

import time

from conftest import emit, emit_bench_json
from repro.radar.config import XBAND_9GHZ
from repro.sim.adaptive import AdaptiveConfig
from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials
from repro.sim.executor import ExecutionPlan
from repro.sim.results import format_table

CLEAN_DISTANCES_M = [3.0, 4.0, 5.0, 6.0, 7.0]
FLOOR_DISTANCE_M = 8.0
SYMBOLS_PER_FRAME = 16
MAX_FRAMES = 160
MIN_FRAMES = 8
CI_WIDTH = 0.25
REPEATS = 3
MIN_SPEEDUP = 5.0

ADAPTIVE = AdaptiveConfig(
    target_rel_width=CI_WIDTH,
    min_frames=MIN_FRAMES,
    max_frames=MAX_FRAMES,
    batch_frames=MIN_FRAMES,
)
PLAN = ExecutionPlan(workers=1, chunk_size=MAX_FRAMES, batch_frames=True)


def _config(paper_alphabet, distance_m):
    return DownlinkTrialConfig(
        radar_config=XBAND_9GHZ,
        alphabet=paper_alphabet,
        distance_m=distance_m,
        num_frames=MAX_FRAMES,
        payload_symbols_per_frame=SYMBOLS_PER_FRAME,
    )


def run_study(paper_alphabet):
    points = {"fixed": {}, "adaptive": {}}
    timings = {"fixed": [], "adaptive": []}
    for _rep in range(REPEATS):
        start = time.perf_counter()
        for distance_m in CLEAN_DISTANCES_M:
            points["fixed"][distance_m] = run_downlink_trials(
                _config(paper_alphabet, distance_m), rng=0, execution=PLAN
            )
        timings["fixed"].append(time.perf_counter() - start)

        start = time.perf_counter()
        for distance_m in CLEAN_DISTANCES_M:
            points["adaptive"][distance_m] = run_downlink_trials(
                _config(paper_alphabet, distance_m), rng=0, execution=PLAN,
                adaptive=ADAPTIVE,
            )
        timings["adaptive"].append(time.perf_counter() - start)

    # Untimed: the error floor runs to its cap in both modes, so it only
    # dilutes the timing signal — but its trajectory belongs in the record.
    for mode, adaptive in (("fixed", None), ("adaptive", ADAPTIVE)):
        points[mode][FLOOR_DISTANCE_M] = run_downlink_trials(
            _config(paper_alphabet, FLOOR_DISTANCE_M), rng=0, execution=PLAN,
            adaptive=adaptive,
        )
    best = {mode: min(times) for mode, times in timings.items()}
    return points, best, timings


def test_adaptive_mc(benchmark, paper_alphabet):
    points, best, timings = benchmark.pedantic(
        run_study, args=(paper_alphabet,), rounds=1, iterations=1
    )
    speedup = best["fixed"] / best["adaptive"]
    fixed_frames = MAX_FRAMES * len(CLEAN_DISTANCES_M)
    adaptive_frames = sum(
        points["adaptive"][distance_m].extra["adaptive"]["frames"]
        for distance_m in CLEAN_DISTANCES_M
    )

    all_distances = CLEAN_DISTANCES_M + [FLOOR_DISTANCE_M]
    rows = []
    for distance_m in all_distances:
        fixed = points["fixed"][distance_m]
        adaptive = points["adaptive"][distance_m]
        trajectory = adaptive.extra["adaptive"]
        timed = distance_m in CLEAN_DISTANCES_M
        rows.append([
            f"{distance_m:.0f}" + ("" if timed else " (untimed)"),
            f"{fixed.ber:.2e}",
            f"{adaptive.ber:.2e}",
            f"{MAX_FRAMES}",
            f"{trajectory['frames']}",
            trajectory["reason"],
        ])
    table = format_table(
        ["dist (m)", "fixed BER", "adaptive BER",
         "fixed frames", "adaptive frames", "stop"],
        rows,
    )
    table += (
        f"\nfixed {best['fixed'] * 1e3:.0f} ms ({fixed_frames} frames) vs "
        f"adaptive {best['adaptive'] * 1e3:.0f} ms ({adaptive_frames} frames) "
        f"over the 3-7 m ladder; speedup x{speedup:.2f} "
        f"(floor x{MIN_SPEEDUP:.1f}); ci-width {CI_WIDTH}, min {MIN_FRAMES}, "
        f"cap {MAX_FRAMES}, best of {REPEATS}"
    )
    emit("adaptive_mc", table)
    emit_bench_json(
        "adaptive_mc",
        elapsed_seconds=sum(sum(times) for times in timings.values()),
        results={
            "clean_distances_m": CLEAN_DISTANCES_M,
            "floor_distance_m": FLOOR_DISTANCE_M,
            "symbols_per_frame": SYMBOLS_PER_FRAME,
            "max_frames": MAX_FRAMES,
            "min_frames": MIN_FRAMES,
            "ci_width": CI_WIDTH,
            "repeats": REPEATS,
            "fixed_seconds": best["fixed"],
            "adaptive_seconds": best["adaptive"],
            "fixed_frames": fixed_frames,
            "adaptive_frames": adaptive_frames,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
            "stop_reasons": {
                f"{distance_m:g}":
                    points["adaptive"][distance_m].extra["adaptive"]["reason"]
                for distance_m in all_distances
            },
        },
    )

    # Equal confidence, every point (the floor included): each stop is
    # sanctioned, and the fixed estimate sits inside the adaptive CI.
    for distance_m in all_distances:
        trajectory = points["adaptive"][distance_m].extra["adaptive"]
        assert trajectory["reason"] in ("zero-errors", "ci-met", "cap")
        if trajectory["reason"] == "cap":
            assert trajectory["frames"] == MAX_FRAMES
        fixed_ber = points["fixed"][distance_m].ber
        assert trajectory["ci_low"] <= fixed_ber <= trajectory["ci_high"], (
            f"{distance_m} m: fixed BER {fixed_ber} outside adaptive CI "
            f"[{trajectory['ci_low']}, {trajectory['ci_high']}]"
        )
    # The floor keeps its full evidence budget — the speedup is not
    # bought by under-sampling the one point that needs frames.
    floor = points["adaptive"][FLOOR_DISTANCE_M].extra["adaptive"]
    assert floor["frames"] == MAX_FRAMES

    # The throughput claim: >=5x wall-clock at equal confidence.
    assert speedup >= MIN_SPEEDUP, (
        f"expected >={MIN_SPEEDUP:.1f}x adaptive speedup, got {speedup:.2f}x "
        f"(fixed {best['fixed']:.3f} s, adaptive {best['adaptive']:.3f} s)"
    )
