"""Integrated sensing and communication session."""

import numpy as np
import pytest

from repro.core.ber import random_bits
from repro.core.isac import IsacSession, required_downlink_repeats
from repro.errors import SimulationError
from repro.sim.scenario import default_office_scenario
from repro.tag.modulator import ModulationScheme, UplinkModulator


@pytest.fixture(scope="module")
def session():
    return default_office_scenario(tag_range_m=3.0).session()


class TestRepeats:
    def test_formula(self):
        # f_mod = 2500 Hz, period 120 us: half-cycle = 200 us = 1.67 slots
        # -> worst reflective run 2 slots -> 3 repeats.
        assert required_downlink_repeats(2500.0, 120e-6) == 3

    def test_faster_modulation_fewer_repeats(self):
        fast = required_downlink_repeats(4000.0, 120e-6)
        slow = required_downlink_repeats(1000.0, 120e-6)
        assert fast < slow

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            required_downlink_repeats(0.0, 120e-6)


class TestSessionConstruction:
    def test_ook_rejected(self):
        scenario = default_office_scenario(tag_range_m=2.0)
        ook = UplinkModulator(
            modulation_rate_hz=2500.0,
            chirp_period_s=120e-6,
            scheme=ModulationScheme.OOK,
        )
        with pytest.raises(SimulationError, match="FSK"):
            IsacSession(
                scenario.radar_config,
                scenario.alphabet,
                scenario.tag.with_modulator(ook),
                tag_range_m=2.0,
            )

    def test_missing_modulator_rejected(self):
        scenario = default_office_scenario(tag_range_m=2.0)
        bare_tag = scenario.tag.with_modulator(None) if False else None
        from repro.tag.architecture import BiScatterTag

        tag = BiScatterTag(decoder_design=scenario.alphabet.decoder)
        with pytest.raises(SimulationError):
            IsacSession(
                scenario.radar_config, scenario.alphabet, tag, tag_range_m=2.0
            )

    def test_period_mismatch_rejected(self):
        scenario = default_office_scenario(tag_range_m=2.0)
        other = UplinkModulator(
            modulation_rate_hz=2000.0,
            chirp_period_s=100e-6,
            scheme=ModulationScheme.FSK,
        )
        with pytest.raises(SimulationError):
            IsacSession(
                scenario.radar_config,
                scenario.alphabet,
                scenario.tag.with_modulator(other),
                tag_range_m=2.0,
            )


class TestFrameBuild:
    def test_repeated_symbols_in_frame(self, session):
        bits = random_bits(10, rng=0)
        frame, packet = session.build_frame(bits, np.array([1], dtype=np.uint8))
        repeats = session.downlink_repeats
        start = session.fields.preamble_length
        symbols = packet.payload_symbols()
        for group, symbol in enumerate(symbols):
            for r in range(repeats):
                assert frame.symbols[start + group * repeats + r] == symbol

    def test_frame_padded_for_uplink(self, session):
        frame, _ = session.build_frame(
            random_bits(5, rng=1), np.ones(8, dtype=np.uint8)
        )
        needed = 8 * session.tag.modulator.chirps_per_bit
        assert len(frame) >= needed


class TestRunFrame:
    def test_clean_exchange(self, session):
        result = session.run_frame(random_bits(20, rng=3), random_bits(4, rng=4), rng=5)
        assert result.downlink_bit_errors == 0
        assert result.uplink_bit_errors == 0
        assert abs(result.localization.range_m - 3.0) < 0.05

    def test_sensing_profile_shows_clutter(self, session):
        result = session.run_frame(random_bits(10, rng=6), random_bits(4, rng=7), rng=8)
        grid, profile = session.sensing_range_profile(result.if_frame)
        # The strongest clutter reflector must appear as a local peak.
        strongest = max(
            (r for r in session.clutter.reflectors if r.range_m < grid[-1]),
            key=lambda r: r.rcs_m2 / r.range_m**4,
        )
        index = int(np.argmin(np.abs(grid - strongest.range_m)))
        window = profile[max(index - 5, 0) : index + 6]
        assert window.max() > 3 * np.median(profile)

    def test_skip_uplink_and_localization(self, session):
        result = session.run_frame(
            random_bits(10, rng=9),
            random_bits(4, rng=10),
            rng=11,
            decode_uplink=False,
            localize=False,
        )
        assert result.uplink is None
        assert result.localization is None
        assert result.uplink_bit_errors == 4  # all counted as lost

    def test_reproducible_with_seed(self, session):
        a = session.run_frame(random_bits(10, rng=1), random_bits(4, rng=2), rng=42)
        b = session.run_frame(random_bits(10, rng=1), random_bits(4, rng=2), rng=42)
        np.testing.assert_array_equal(a.downlink_bits_decoded, b.downlink_bits_decoded)
        np.testing.assert_array_equal(a.uplink.bits, b.uplink.bits)

    def test_tag_states_recorded(self, session):
        result = session.run_frame(random_bits(10, rng=1), random_bits(4, rng=2), rng=3)
        assert result.tag_states.size == len(result.frame)
        assert result.tag_states.dtype == bool
