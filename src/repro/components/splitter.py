"""Two-way power splitter / combiner (e.g. Mini-Circuits ZC2PD-18263-S+).

The tag decoder uses two of these: one to split the received chirp into the
two delay lines and one to recombine the delayed copies (paper Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_finite, ensure_positive


@dataclass(frozen=True)
class SplitterCombiner:
    """Behavioural 2-way splitter/combiner.

    Parameters
    ----------
    excess_loss_db:
        Loss beyond the ideal 3 dB split (dissipative loss); datasheet
        values for the ZC2PD family are ~1 dB across band.
    isolation_db:
        Port-to-port isolation (used to bound leakage between delay lines).
    """

    excess_loss_db: float = 1.0
    isolation_db: float = 20.0

    def __post_init__(self) -> None:
        ensure_finite("excess_loss_db", self.excess_loss_db)
        ensure_positive("isolation_db", self.isolation_db)
        if self.excess_loss_db < 0:
            raise ValueError(f"excess_loss_db must be >= 0, got {self.excess_loss_db!r}")

    @property
    def split_loss_db(self) -> float:
        """Per-branch loss when splitting: ideal 3 dB + excess."""
        return 3.0103 + self.excess_loss_db

    def insertion_loss_db(self, frequency_hz: float) -> float:
        """Per-branch insertion loss (frequency-flat behavioural model)."""
        return self.split_loss_db

    def group_delay_s(self, frequency_hz: float) -> float:
        """Electrical length of the splitter is negligible vs. delay lines."""
        return 0.0

    def split(self, signal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split a signal into two equal branches with per-branch loss."""
        scale = 10.0 ** (-self.split_loss_db / 20.0)
        branch = np.asarray(signal) * scale
        return branch, branch.copy()

    def combine(self, branch_a: np.ndarray, branch_b: np.ndarray) -> np.ndarray:
        """Combine two branches (same per-branch loss as splitting)."""
        a = np.asarray(branch_a)
        b = np.asarray(branch_b)
        if a.shape != b.shape:
            raise ValueError(f"branch shapes differ: {a.shape} vs {b.shape}")
        scale = 10.0 ** (-self.split_loss_db / 20.0)
        return (a + b) * scale
