"""IF correction (Fig. 7 / Eq. 15), slow-time processing, tag detection."""

import numpy as np
import pytest

from repro.errors import DetectionError
from repro.radar.config import XBAND_9GHZ
from repro.radar.detection import TagDetection, cfar_detect, detect_modulated_tag
from repro.radar.doppler_processing import (
    modulation_signature_score,
    range_doppler_map,
    slow_time_spectrum,
    square_wave_signature,
)
from repro.radar.fmcw import FMCWRadar, Scatterer
from repro.radar.if_correction import (
    align_profiles_to_common_grid,
    uncorrected_bin_peak_ranges,
)
from repro.waveform.frame import FrameSchedule


def mixed_slope_frame(durations, period=120e-6):
    chirps = [XBAND_9GHZ.chirp(d) for d in durations]
    return FrameSchedule.from_chirps(chirps, period)


def receive(frame, scatterers, rng=None, add_noise=False):
    return FMCWRadar(XBAND_9GHZ).receive_frame(frame, scatterers, rng=rng, add_noise=add_noise)


class TestIFCorrection:
    def test_uncorrected_peaks_wander_with_slope(self):
        frame = mixed_slope_frame([20e-6, 40e-6, 80e-6, 96e-6])
        target = Scatterer(range_m=4.0, rcs_m2=1e-2, gain_jitter_std=0.0)
        if_frame = receive(frame, [target])
        apparent = uncorrected_bin_peak_ranges(if_frame, min_range_m=0.5)
        assert np.ptp(apparent) > 1.0  # Fig. 7(a): inconsistent ranges

    def test_corrected_peaks_agree_across_slopes(self):
        frame = mixed_slope_frame([20e-6, 40e-6, 80e-6, 96e-6])
        target = Scatterer(range_m=4.0, rcs_m2=1e-2, gain_jitter_std=0.0)
        if_frame = receive(frame, [target])
        result = align_profiles_to_common_grid(if_frame)
        peaks = result.per_chirp_peak_ranges_m(min_range_m=0.5)
        assert np.ptp(peaks) < 0.1  # Fig. 7(b): consistent
        assert np.median(peaks) == pytest.approx(4.0, abs=0.1)

    def test_common_grid_extent_is_min_unambiguous(self):
        frame = mixed_slope_frame([20e-6, 96e-6])
        target = Scatterer(range_m=2.0, rcs_m2=1e-2, gain_jitter_std=0.0)
        result = align_profiles_to_common_grid(receive(frame, [target]))
        shortest = frame.slots[0].chirp
        expected_extent = (5e6 / 2) * 299792458.0 / (2 * shortest.slope_hz_per_s)
        assert result.range_grid_m[-1] == pytest.approx(expected_extent, rel=0.02)

    def test_max_range_override(self):
        frame = mixed_slope_frame([40e-6, 40e-6])
        target = Scatterer(range_m=2.0, rcs_m2=1e-2, gain_jitter_std=0.0)
        result = align_profiles_to_common_grid(receive(frame, [target]), max_range_m=5.0)
        assert result.range_grid_m[-1] == pytest.approx(5.0)

    def test_aligned_shape(self):
        frame = mixed_slope_frame([40e-6] * 6)
        target = Scatterer(range_m=2.0, rcs_m2=1e-2, gain_jitter_std=0.0)
        result = align_profiles_to_common_grid(receive(frame, [target]), range_bins=256)
        assert result.aligned.shape == (6, 256)
        assert result.num_chirps == 6

    def test_empty_frame_rejected(self):
        from repro.radar.fmcw import IFFrame

        empty = IFFrame(frame=FrameSchedule(), sample_rate_hz=5e6, chirp_samples=[])
        with pytest.raises(ValueError):
            align_profiles_to_common_grid(empty)

    def test_bad_pad_factor(self):
        frame = mixed_slope_frame([40e-6])
        target = Scatterer(range_m=2.0, rcs_m2=1e-2, gain_jitter_std=0.0)
        with pytest.raises(ValueError):
            align_profiles_to_common_grid(receive(frame, [target]), pad_factor=0)


class TestSlowTime:
    def make_modulated_matrix(self, rate_hz=2000.0, period=120e-6, chirps=128, bins=64):
        times = np.arange(chirps) * period
        states = ((times * rate_hz) % 1.0) < 0.5
        matrix = np.ones((chirps, bins), dtype=complex) * 0.01
        matrix[:, 20] = np.where(states, 1.0, 0.1)
        return matrix

    def test_spectrum_peak_at_modulation_rate(self):
        matrix = self.make_modulated_matrix(rate_hz=2000.0)
        freqs, spectrum = slow_time_spectrum(matrix, 120e-6)
        column = spectrum[:, 20]
        assert freqs[np.argmax(column)] == pytest.approx(2000.0, rel=0.05)

    def test_dc_removal(self):
        matrix = np.ones((32, 8), dtype=complex) * 5.0
        _, spectrum = slow_time_spectrum(matrix, 120e-6, remove_dc=True)
        assert spectrum.max() < 1e-10

    def test_needs_four_chirps(self):
        with pytest.raises(ValueError):
            slow_time_spectrum(np.ones((2, 8), dtype=complex), 120e-6)

    def test_range_doppler_map_shape(self):
        matrix = self.make_modulated_matrix(chirps=64, bins=32)
        freqs, rd_map = range_doppler_map(matrix, 120e-6)
        assert rd_map.shape[1] == 32
        assert freqs.size == rd_map.shape[0]
        assert freqs[0] < 0 < freqs[-1]

    def test_signature_template_odd_harmonics(self):
        freqs = np.linspace(0, 4000, 401)
        template = square_wave_signature(1000.0, freqs)
        fundamental = template[np.argmin(np.abs(freqs - 1000))]
        third = template[np.argmin(np.abs(freqs - 3000))]
        second = template[np.argmin(np.abs(freqs - 2000))]
        assert fundamental > 0 and third > 0
        assert second == 0.0
        assert fundamental == pytest.approx(3 * third, rel=1e-6)

    def test_signature_normalized(self):
        freqs = np.linspace(0, 4000, 401)
        template = square_wave_signature(700.0, freqs)
        assert np.linalg.norm(template) == pytest.approx(1.0)

    def test_signature_score_prefers_matching_cell(self):
        matrix = self.make_modulated_matrix(rate_hz=1500.0)
        freqs, spectrum = slow_time_spectrum(matrix, 120e-6)
        match = modulation_signature_score(spectrum[:, 20], freqs, 1500.0)
        empty = modulation_signature_score(spectrum[:, 5], freqs, 1500.0)
        assert match > 10 * empty


class TestDetection:
    def test_cfar_finds_isolated_peak(self):
        profile = np.ones(100)
        profile[40] = 50.0
        hits = cfar_detect(profile)
        assert 40 in hits

    def test_cfar_quiet_profile_no_hits(self):
        rng = np.random.default_rng(0)
        profile = rng.exponential(1.0, 200)
        hits = cfar_detect(profile, threshold_factor=20.0)
        assert hits.size == 0

    def test_cfar_validates(self):
        with pytest.raises(ValueError):
            cfar_detect(np.ones((4, 4)))

    def test_detect_modulated_tag_end_to_end(self):
        period = 120e-6
        frame = mixed_slope_frame([80e-6] * 128)
        times = np.arange(128) * period
        states = ((times * 2000.0) % 1.0) < 0.5
        tag = Scatterer(
            range_m=3.0,
            rcs_m2=3e-3,
            amplitude_schedule=np.where(states, 1.0, 0.03),
            gain_jitter_std=0.0,
        )
        clutterer = Scatterer(range_m=5.0, rcs_m2=1.0, gain_jitter_std=0.0)
        if_frame = receive(frame, [tag, clutterer], rng=0, add_noise=True)
        correction = align_profiles_to_common_grid(if_frame)
        detection = detect_modulated_tag(
            correction.aligned, correction.range_grid_m, period, 2000.0
        )
        assert isinstance(detection, TagDetection)
        assert detection.range_m == pytest.approx(3.0, abs=0.15)
        assert detection.snr_db > 10.0

    def test_detect_rejects_aliasing_rate(self):
        matrix = np.ones((64, 16), dtype=complex)
        with pytest.raises(DetectionError):
            detect_modulated_tag(matrix, np.linspace(0, 10, 16), 120e-6, 1.0 / 120e-6)

    def test_detect_shape_mismatch(self):
        with pytest.raises(ValueError):
            detect_modulated_tag(np.ones((64, 16), dtype=complex), np.linspace(0, 10, 8), 120e-6, 1000.0)
