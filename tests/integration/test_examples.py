"""Smoke-run the example scripts: the user-facing surface must keep working."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent.parent / "examples"

# Fast examples run on every test invocation; the heavier sweeps are
# covered by their own benches and are only smoke-checked here for
# importability.
FAST_EXAMPLES = [
    "quickstart.py",
    "tag_firmware_bringup.py",
    "multi_tag_inventory.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script, capsys, monkeypatch):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"{script} missing"
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    captured = capsys.readouterr()
    assert "OK" in captured.out


@pytest.mark.parametrize(
    "script",
    ["warehouse_drone.py", "link_adaptation.py", "reliable_link.py"],
)
def test_heavy_examples_importable(script):
    """The slower examples at least parse and expose a main()."""
    path = EXAMPLES_DIR / script
    assert path.exists()
    source = path.read_text()
    compiled = compile(source, str(path), "exec")
    namespace = {"__name__": "not_main"}
    exec(compiled, namespace)
    assert callable(namespace.get("main"))
