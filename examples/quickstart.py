#!/usr/bin/env python3
"""Quickstart: one integrated two-way exchange between a radar and a tag.

Builds the paper's default setup (9 GHz radar, 1 GHz bandwidth, 120 us
chirp period, 5-bit CSSK symbols, a 45-inch delay-line tag in an office
with clutter), then runs a single radar frame that SIMULTANEOUSLY:

* sends a downlink command to the tag (CSSK chirp-slope keying),
* receives the tag's uplink reply (FSK backscatter),
* localizes the tag to centimeter accuracy, and
* images the static environment (sensing stays transparent).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import bit_error_rate, random_bits
from repro.sim import default_office_scenario


def main() -> None:
    scenario = default_office_scenario(tag_range_m=3.2)
    session = scenario.session()

    print("BiScatter quickstart")
    print("--------------------")
    alphabet = scenario.alphabet
    print(f"radar          : {scenario.radar_config.name}")
    print(f"bandwidth      : {alphabet.bandwidth_hz / 1e9:.1f} GHz")
    print(f"chirp period   : {alphabet.chirp_period_s * 1e6:.0f} us")
    print(
        f"CSSK alphabet  : {alphabet.num_slopes} slopes "
        f"({alphabet.symbol_bits} bits/symbol, "
        f"{alphabet.data_rate_bps() / 1e3:.1f} kbps downlink)"
    )
    print(f"tag distance   : {scenario.tag_range_m} m")
    print(f"uplink FSK     : {scenario.tag.modulator.modulation_rate_hz:.0f} Hz base rate")
    print()

    downlink_bits = random_bits(40, rng=1)  # a command for the tag
    uplink_bits = random_bits(6, rng=2)  # the tag's sensor report

    result = session.run_frame(downlink_bits, uplink_bits, rng=7)

    print(f"frame          : {len(result.frame)} chirps, "
          f"{result.frame.duration_s * 1e3:.1f} ms on air")
    downlink_ber = bit_error_rate(downlink_bits, result.downlink_bits_decoded)
    uplink_ber = bit_error_rate(uplink_bits, result.uplink.bits)
    print(f"downlink       : {downlink_bits.size} bits, BER {downlink_ber:.0%}")
    print(f"uplink         : {uplink_bits.size} bits, BER {uplink_ber:.0%}, "
          f"cell SNR {result.uplink.detection.snr_db:.1f} dB")
    error_cm = abs(result.localization.range_m - scenario.tag_range_m) * 100
    print(f"localization   : {result.localization.range_m:.3f} m "
          f"(truth {scenario.tag_range_m} m, error {error_cm:.2f} cm)")

    grid, profile = session.sensing_range_profile(result.if_frame)
    print("\nsensing (range profile peaks while communicating):")
    floor = np.median(profile)
    for reflector in sorted(scenario.clutter.reflectors, key=lambda r: r.range_m):
        if reflector.range_m > grid[-1]:
            continue
        index = int(np.argmin(np.abs(grid - reflector.range_m)))
        window = profile[max(index - 4, 0) : index + 5]
        visible = window.max() > 3 * floor
        marker = "detected" if visible else "below floor"
        print(
            f"  reflector at {reflector.range_m:5.2f} m "
            f"({10 * np.log10(reflector.rcs_m2):+5.1f} dBsm): {marker}"
        )

    assert downlink_ber == 0.0 and uplink_ber == 0.0, "exchange should be clean"
    print("\nOK: two-way communication, localization, and sensing in one frame.")


if __name__ == "__main__":
    main()
