"""Tag power-consumption model (paper Section 4.1).

Two operating modes:

* **Continuous** communication-and-sensing: switch + envelope detector +
  MCU (1 MHz clock for the ADC) all active.  Paper total: ~48 mW,
  dominated by the 40 mW MCU.
* **Sequential** uplink/downlink: the MCU sleeps during uplink intervals;
  the switch runs from a PWM signal (< 3 uW).  The average power then
  depends on the downlink duty cycle.

The model also reproduces the paper's projected custom-IC budget (~4 mW)
by swapping component figures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.validation import ensure_in_range, ensure_positive


class PowerMode(enum.Enum):
    """Tag operating mode for power accounting."""

    CONTINUOUS = "continuous"
    SEQUENTIAL = "sequential"


@dataclass(frozen=True)
class TagPowerModel:
    """Component-level tag power budget.

    Defaults follow the paper's prototype: ADRF5144 switch 2.86 uW,
    ADL6010 detector 8 mW, MCU at 1 MHz ~40 mW, PWM-driven switch < 3 uW,
    MCU sleep current ~2 uW.
    """

    switch_active_w: float = 2.86e-6
    envelope_detector_w: float = 8e-3
    mcu_active_w: float = 40e-3
    mcu_sleep_w: float = 2e-6
    pwm_drive_w: float = 3e-6

    def __post_init__(self) -> None:
        for name in (
            "switch_active_w",
            "envelope_detector_w",
            "mcu_active_w",
            "mcu_sleep_w",
            "pwm_drive_w",
        ):
            ensure_positive(name, getattr(self, name))

    def continuous_power_w(self) -> float:
        """Total draw with all components always on (~48 mW prototype)."""
        return self.switch_active_w + self.envelope_detector_w + self.mcu_active_w

    def downlink_only_power_w(self) -> float:
        """Draw while decoding (uplink path idle): detector + MCU."""
        return self.envelope_detector_w + self.mcu_active_w

    def uplink_only_power_w(self) -> float:
        """Draw while only backscattering: PWM-driven switch, MCU asleep."""
        return self.pwm_drive_w + self.mcu_sleep_w

    def sequential_power_w(self, downlink_duty: float) -> float:
        """Average draw alternating downlink (duty) and uplink (1 - duty)."""
        ensure_in_range("downlink_duty", downlink_duty, 0.0, 1.0)
        return (
            downlink_duty * self.downlink_only_power_w()
            + (1.0 - downlink_duty) * self.uplink_only_power_w()
        )

    def power_w(self, mode: PowerMode, *, downlink_duty: float = 0.5) -> float:
        """Average power in an operating mode."""
        if mode is PowerMode.CONTINUOUS:
            return self.continuous_power_w()
        return self.sequential_power_w(downlink_duty)

    def battery_life_hours(
        self, mode: PowerMode, battery_mwh: float, *, downlink_duty: float = 0.5
    ) -> float:
        """Runtime on a battery of ``battery_mwh`` milliwatt-hours."""
        ensure_positive("battery_mwh", battery_mwh)
        draw_mw = self.power_w(mode, downlink_duty=downlink_duty) * 1e3
        return battery_mwh / draw_mw

    @classmethod
    def prototype(cls) -> "TagPowerModel":
        """The paper's COTS prototype figures."""
        return cls()

    @classmethod
    def projected_ic(cls) -> "TagPowerModel":
        """The paper's projected custom-IC budget (~4 mW continuous).

        MOSFET switch, op-amp envelope detection, Walden-FoM ADC, and a
        Goertzel filter instead of a full FFT.
        """
        return cls(
            switch_active_w=0.5e-6,
            envelope_detector_w=1.0e-3,
            mcu_active_w=3.0e-3,
            mcu_sleep_w=0.5e-6,
            pwm_drive_w=1.0e-6,
        )
