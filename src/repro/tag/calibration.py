"""One-time tag calibration (paper Section 3.2.1).

Eq. 11 assumes the delay-line dielectric constant — hence the differential
delay ``dT`` — is known and flat across the band.  In practice it drifts
("a small deviation ... can be considered as the small difference in k,
the speed of signal ratio ... which can be tuned with a one-time
calibration").  A mis-calibrated ``dT`` scales every measured beat by the
same factor, walking symbols into their neighbours' decision regions.

The calibration protocol implemented here mirrors the paper's bench
procedure:

1. the radar transmits a *calibration frame* of known chirp durations
   (the packet preamble's header/sync slopes suffice — they are known to
   any tag by construction);
2. the tag measures the beat each known slope actually produces;
3. the ratio of measured to predicted beats estimates the true ``dT``
   (least squares across the calibration chirps);
4. the tag rebuilds its decision table from the corrected
   :class:`~repro.core.cssk.DecoderDesign`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.errors import ConfigurationError, DecodingError
from repro.tag.frontend import TagCapture
from repro.utils.dsp import dominant_frequency
from repro.utils.validation import ensure_positive
from repro.waveform.frame import FrameSchedule


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a delay-calibration pass."""

    estimated_delta_t_s: float
    nominal_delta_t_s: float
    per_chirp_beats_hz: np.ndarray
    residual_rms_hz: float

    @property
    def scale_error(self) -> float:
        """Multiplicative error of the nominal dT (1.0 = perfectly built)."""
        return self.estimated_delta_t_s / self.nominal_delta_t_s


def measure_calibration_beats(
    capture: TagCapture,
    frame: FrameSchedule,
    *,
    min_frequency_hz: float = 5e3,
) -> np.ndarray:
    """Per-slot dominant beat frequencies of a calibration capture.

    The capture must be slot-aligned (calibration runs at close range with
    genie timing, as the paper calibrates at 0.5 m).
    """
    from repro.utils.dsp import fine_tone_frequency

    beats = []
    for index in range(len(frame)):
        samples = capture.slot_samples(index)
        chirp_samples = int(frame.slots[index].chirp.duration_s * capture.sample_rate_hz)
        if chirp_samples < 8:
            raise ConfigurationError("calibration chirp too short for the ADC rate")
        gated = samples[:chirp_samples]
        coarse = dominant_frequency(
            gated, capture.sample_rate_hz, min_frequency_hz=min_frequency_hz
        )
        beats.append(
            fine_tone_frequency(gated, capture.sample_rate_hz, coarse, span_fraction=0.12)
        )
    return np.asarray(beats)


def estimate_delta_t(
    measured_beats_hz: np.ndarray,
    frame: FrameSchedule,
    nominal_delta_t_s: float,
) -> CalibrationResult:
    """Least-squares ``dT`` from known slopes and measured beats.

    With ``beat_i = slope_i * dT`` the LS estimate over the calibration
    chirps is ``dT = sum(slope_i * beat_i) / sum(slope_i^2)``.
    """
    ensure_positive("nominal_delta_t_s", nominal_delta_t_s)
    beats = np.asarray(measured_beats_hz, dtype=float)
    slopes = np.array([slot.chirp.slope_hz_per_s for slot in frame.slots])
    if beats.size != slopes.size:
        raise ConfigurationError(
            f"{beats.size} measurements for {slopes.size} calibration chirps"
        )
    if beats.size < 2:
        raise ConfigurationError("calibration needs at least two chirps")
    estimated = float(np.dot(slopes, beats) / np.dot(slopes, slopes))
    if estimated <= 0:
        raise DecodingError("calibration produced a non-physical delay estimate")
    residual = beats - slopes * estimated
    return CalibrationResult(
        estimated_delta_t_s=estimated,
        nominal_delta_t_s=nominal_delta_t_s,
        per_chirp_beats_hz=beats,
        residual_rms_hz=float(np.sqrt(np.mean(residual**2))),
    )


def calibrated_decoder_design(
    nominal: DecoderDesign, calibration: CalibrationResult
) -> DecoderDesign:
    """A corrected :class:`DecoderDesign` reflecting the measured delay.

    The physical length is what it is; the correction lands in the
    velocity factor (``k``), which is exactly where the paper locates the
    discrepancy.
    """
    corrected_k = nominal.velocity_factor / calibration.scale_error
    if not 0.1 <= corrected_k <= 1.0:
        raise DecodingError(
            f"calibrated velocity factor {corrected_k:.3f} is outside the "
            "physical range — calibration data is suspect"
        )
    return replace(nominal, velocity_factor=corrected_k)


def recalibrate_alphabet(
    alphabet: CsskAlphabet, calibration: CalibrationResult
) -> CsskAlphabet:
    """The tag-side decision table rebuilt on the measured delay.

    Only the tag's *interpretation* changes: the radar keeps transmitting
    the same chirp durations; the tag now expects each one at its true
    beat frequency.
    """
    corrected = calibrated_decoder_design(alphabet.decoder, calibration)
    scale = calibration.scale_error
    return replace(
        alphabet,
        decoder=corrected,
        data_beats_hz=tuple(b * scale for b in alphabet.data_beats_hz),
        header_beat_hz=alphabet.header_beat_hz * scale,
        sync_beat_hz=alphabet.sync_beat_hz * scale,
    )
