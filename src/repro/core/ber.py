"""Bit/symbol error-rate bookkeeping for Monte-Carlo evaluation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import resolve_rng


def random_bits(count: int, *, rng: int | np.random.Generator | None = None) -> np.ndarray:
    """Uniform random payload bits."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return resolve_rng(rng).integers(0, 2, count).astype(np.uint8)


def bit_error_rate(
    transmitted: np.ndarray, received: np.ndarray, *, missing_as_errors: bool = True
) -> float:
    """Fraction of bit positions that differ.

    When the receiver recovered fewer bits than were sent (lost sync,
    truncated capture) the missing tail counts as errors by default —
    matching how over-the-air BER is scored.
    """
    tx = np.asarray(transmitted, dtype=np.uint8)
    rx = np.asarray(received, dtype=np.uint8)
    if tx.size == 0:
        raise ValueError("transmitted bit vector is empty")
    compare = min(tx.size, rx.size)
    errors = int(np.count_nonzero(tx[:compare] != rx[:compare]))
    if missing_as_errors:
        errors += abs(tx.size - compare)
    return errors / tx.size


def symbol_error_rate(transmitted: "list[int]", received: "list[int]") -> float:
    """Fraction of symbol positions that differ (missing = errors)."""
    if not transmitted:
        raise ValueError("transmitted symbol list is empty")
    compare = min(len(transmitted), len(received))
    errors = sum(1 for a, b in zip(transmitted[:compare], received[:compare]) if a != b)
    errors += len(transmitted) - compare
    return errors / len(transmitted)


def bits_from_symbols(symbols: "list[int]", symbol_bits: int) -> np.ndarray:
    """Expand plain binary symbol indices to bits (MSB first) — for
    baselines that do not Gray-code."""
    if symbol_bits < 1:
        raise ValueError(f"symbol_bits must be >= 1, got {symbol_bits}")
    out = []
    for symbol in symbols:
        if not 0 <= symbol < 2**symbol_bits:
            raise ValueError(f"symbol {symbol} out of range for {symbol_bits} bits")
        out.extend((symbol >> shift) & 1 for shift in range(symbol_bits - 1, -1, -1))
    return np.asarray(out, dtype=np.uint8)


@dataclass
class ErrorCounter:
    """Streaming BER accumulator for Monte-Carlo loops."""

    bit_errors: int = 0
    bits_total: int = 0

    def update(self, transmitted: np.ndarray, received: np.ndarray) -> None:
        """Accumulate one trial's errors (missing tail counts as errors)."""
        tx = np.asarray(transmitted, dtype=np.uint8)
        rx = np.asarray(received, dtype=np.uint8)
        compare = min(tx.size, rx.size)
        self.bit_errors += int(np.count_nonzero(tx[:compare] != rx[:compare]))
        self.bit_errors += tx.size - compare
        self.bits_total += tx.size

    @property
    def ber(self) -> float:
        """Current BER estimate (0 if nothing accumulated)."""
        return self.bit_errors / self.bits_total if self.bits_total else 0.0

    def confidence_interval_95(self) -> tuple[float, float]:
        """Wilson 95% interval on the BER estimate."""
        if self.bits_total == 0:
            return 0.0, 1.0
        z = 1.96
        n = self.bits_total
        p = self.ber
        denom = 1.0 + z**2 / n
        center = (p + z**2 / (2 * n)) / denom
        margin = z * np.sqrt(p * (1 - p) / n + z**2 / (4 * n**2)) / denom
        return max(center - margin, 0.0), min(center + margin, 1.0)
