"""Simulation harness: scenarios, Monte-Carlo engines, parameter sweeps."""

from repro.sim.scenario import Scenario, default_office_scenario
from repro.sim.adaptive import (
    AdaptiveConfig,
    AdaptiveResult,
    binomial_interval,
    clopper_pearson_interval,
    run_adaptive_trials,
    should_stop,
    stopping_trials,
    wilson_interval,
)
from repro.sim.engine import (
    DownlinkTrialConfig,
    run_downlink_trials,
    run_uplink_snr_measurement,
    run_localization_trials,
)
from repro.errors import ChunkFailure, ExecutorError
from repro.sim.executor import (
    ChunkTiming,
    ExecutionPlan,
    ExecutionReport,
    chunk_indices,
    default_start_method,
    map_trials,
    strip_execution,
    sweep_results_equal,
)
from repro.sim.results import BerPoint, SweepResult, format_table
from repro.sim.robustness import (
    DegradationCurve,
    RobustnessConfig,
    run_robustness_point,
    run_robustness_sweep,
)
from repro.sim.sweep import sweep, sweep_grid
from repro.sim.trace import load_capture, load_if_frame, save_capture, save_if_frame
from repro.sim.report import LinkTargets, SessionReport, build_report

__all__ = [
    "Scenario",
    "default_office_scenario",
    "AdaptiveConfig",
    "AdaptiveResult",
    "binomial_interval",
    "clopper_pearson_interval",
    "run_adaptive_trials",
    "should_stop",
    "stopping_trials",
    "wilson_interval",
    "DownlinkTrialConfig",
    "run_downlink_trials",
    "run_uplink_snr_measurement",
    "run_localization_trials",
    "ChunkFailure",
    "ChunkTiming",
    "ExecutionPlan",
    "ExecutionReport",
    "ExecutorError",
    "chunk_indices",
    "default_start_method",
    "map_trials",
    "strip_execution",
    "sweep_results_equal",
    "BerPoint",
    "SweepResult",
    "format_table",
    "DegradationCurve",
    "RobustnessConfig",
    "run_robustness_point",
    "run_robustness_sweep",
    "sweep",
    "sweep_grid",
    "load_capture",
    "load_if_frame",
    "save_capture",
    "save_if_frame",
    "LinkTargets",
    "SessionReport",
    "build_report",
]
