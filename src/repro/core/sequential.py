"""Sequential uplink/downlink mode (paper Section 4.1, second mode).

When simultaneous communication and sensing is not required, the tag
alternates between a *downlink window* (MCU + detector awake, decoding)
and an *uplink window* (MCU asleep, the switch driven by a ~3 uW PWM) —
cutting average power by orders of magnitude at the cost of latency.

:class:`SequentialModeController` plans the alternation, accounts the
energy, and runs the windows against an :class:`IsacSession`:

* during a downlink window the tag does NOT modulate (its switch rests in
  the absorptive/decode position), so the radar sends plain CSSK packets;
* during an uplink window the tag cannot decode, so the radar only reads
  backscatter and performs sensing/localization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ber import bit_error_rate
from repro.core.isac import IsacSession
from repro.errors import ConfigurationError
from repro.tag.power import TagPowerModel
from repro.utils.rng import resolve_rng
from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class SequentialSchedule:
    """A repeating downlink/uplink alternation plan.

    Parameters
    ----------
    downlink_window_s / uplink_window_s:
        Durations of the two windows in each cycle.
    """

    downlink_window_s: float
    uplink_window_s: float

    def __post_init__(self) -> None:
        ensure_positive("downlink_window_s", self.downlink_window_s)
        ensure_positive("uplink_window_s", self.uplink_window_s)

    @property
    def cycle_s(self) -> float:
        return self.downlink_window_s + self.uplink_window_s

    @property
    def downlink_duty(self) -> float:
        """Fraction of time the decode chain is powered."""
        return self.downlink_window_s / self.cycle_s

    def average_power_w(self, power_model: TagPowerModel) -> float:
        """Mean tag draw under this schedule."""
        return power_model.sequential_power_w(self.downlink_duty)

    def energy_per_cycle_j(self, power_model: TagPowerModel) -> float:
        """Energy one full cycle costs the tag."""
        return (
            self.downlink_window_s * power_model.downlink_only_power_w()
            + self.uplink_window_s * power_model.uplink_only_power_w()
        )


@dataclass
class SequentialExchangeResult:
    """Outcome of one sequential cycle."""

    downlink_ber: float
    uplink_ber: float
    localization_error_m: float | None
    average_power_w: float
    cycle_s: float


class SequentialModeController:
    """Runs alternating read/write windows and accounts tag energy.

    Parameters
    ----------
    session:
        The underlying integrated session (its machinery is reused, but
        the two directions run in separate frames here).
    schedule:
        The window alternation plan.
    """

    def __init__(self, session: IsacSession, schedule: SequentialSchedule) -> None:
        frame_s = session.alphabet.chirp_period_s
        if schedule.downlink_window_s < 20 * frame_s:
            raise ConfigurationError(
                "downlink window shorter than a minimal packet "
                f"({schedule.downlink_window_s}s < 20 chirp periods)"
            )
        self.session = session
        self.schedule = schedule

    def downlink_capacity_bits(self) -> int:
        """Payload bits one downlink window can carry (single packet)."""
        alphabet = self.session.alphabet
        slots = int(self.schedule.downlink_window_s / alphabet.chirp_period_s)
        payload_slots = slots - self.session.fields.preamble_length
        return max(payload_slots, 0) * alphabet.symbol_bits

    def uplink_capacity_bits(self) -> int:
        """Bits one uplink window can carry."""
        modulator = self.session.tag.modulator
        chirps = int(self.schedule.uplink_window_s / modulator.chirp_period_s)
        return chirps // modulator.chirps_per_bit

    def run_cycle(
        self,
        downlink_bits: np.ndarray,
        uplink_bits: np.ndarray,
        *,
        rng: int | np.random.Generator | None = None,
        localize: bool = True,
    ) -> SequentialExchangeResult:
        """One full cycle: a decode-only window then a backscatter window."""
        generator = resolve_rng(rng)
        downlink = np.asarray(downlink_bits, dtype=np.uint8)
        uplink = np.asarray(uplink_bits, dtype=np.uint8)
        if downlink.size > self.downlink_capacity_bits():
            raise ConfigurationError(
                f"{downlink.size} downlink bits exceed the window capacity "
                f"{self.downlink_capacity_bits()}"
            )
        if uplink.size > self.uplink_capacity_bits():
            raise ConfigurationError(
                f"{uplink.size} uplink bits exceed the window capacity "
                f"{self.uplink_capacity_bits()}"
            )

        # --- downlink window: tag decodes, does not modulate -----------------
        from repro.core.packet import DownlinkPacket, pad_bits_to_symbols

        alphabet = self.session.alphabet
        padded = pad_bits_to_symbols(downlink, alphabet.symbol_bits)
        packet = DownlinkPacket.from_bits(alphabet, padded, fields=self.session.fields)
        frame = self.session.encoder.encode_packet(packet)
        frontend = self.session.tag.frontend(self.session.downlink_budget)
        capture = frontend.capture(frame, self.session.tag_range_m, rng=generator)
        decoder = self.session.tag.decoder(alphabet, fields=self.session.fields)
        decoded = decoder.decode(capture, num_payload_symbols=packet.num_payload_symbols)
        downlink_ber = bit_error_rate(padded, decoded.bits)

        # --- uplink window: tag modulates, MCU asleep -------------------------
        uplink_frame = self.session.encoder.sensing_frame(
            uplink.size * self.session.tag.modulator.chirps_per_bit
        )
        times = np.array([slot.start_time_s for slot in uplink_frame.slots])
        states = self.session.tag.modulator.states_for_bits(uplink, times)
        scatterers = self.session._clutter_scatterers() + [
            self.session._tag_scatterer(states)
        ]
        if_frame = self.session.radar.receive_frame(
            uplink_frame, scatterers, rng=generator
        )
        uplink_result = self.session.uplink_decoder.decode(if_frame, num_bits=uplink.size)
        uplink_ber = bit_error_rate(uplink, uplink_result.bits)

        localization_error = None
        if localize:
            located = self.session.localizer.localize(if_frame)
            localization_error = abs(located.range_m - self.session.tag_range_m)

        return SequentialExchangeResult(
            downlink_ber=downlink_ber,
            uplink_ber=uplink_ber,
            localization_error_m=localization_error,
            average_power_w=self.schedule.average_power_w(self.session.tag.power),
            cycle_s=self.schedule.cycle_s,
        )

    def power_saving_factor(self) -> float:
        """Continuous-mode power over sequential-mode power."""
        continuous = self.session.tag.power.continuous_power_w()
        return continuous / self.schedule.average_power_w(self.session.tag.power)
