"""Reliable downlink delivery: CRC framing + stop-and-wait ARQ.

The paper motivates the downlink with "making on-demand retransmissions in
case of packet loss" — this module supplies that capability on top of the
integrated session:

* :func:`crc8` / :class:`CrcFrame` — an 8-bit CRC (CCITT polynomial 0x07)
  wraps each downlink payload so the tag can verify integrity with a
  table-free bitwise routine cheap enough for its MCU.
* :class:`ArqController` — stop-and-wait over two integrated frames per
  round: a DATA frame carries the sequenced, CRC-protected payload down;
  a FEEDBACK frame carries the tag's [ACK, sequence] verdict (plus any
  piggybacked tag data) back up.  The radar retransmits on NACK, on a
  corrupted feedback field, or on feedback loss, up to a retry budget.

Both directions ride the normal ISAC frames, so reliability costs no extra
waveform — the kind of protocol the two-way capability unlocks over
read-only backscatter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.isac import IsacSession
from repro.core.packet import pad_bits_to_symbols
from repro.errors import DecodingError, DetectionError, PacketError
from repro.utils.rng import resolve_rng

CRC_BITS = 8
_CRC_POLY = 0x07  # x^8 + x^2 + x + 1 (CRC-8/CCITT)

#: Uplink control field layout: [ACK flag, sequence bit].
CONTROL_BITS = 2


def crc8(bits: np.ndarray) -> int:
    """CRC-8 (poly 0x07) over a bit vector, MSB-first, zero-initialized."""
    data = np.asarray(bits, dtype=np.uint8)
    if data.ndim != 1:
        raise PacketError(f"bits must be 1-D, got shape {data.shape}")
    if np.any((data != 0) & (data != 1)):
        raise PacketError("bits must be 0/1")
    register = 0
    for bit in data:
        register ^= int(bit) << 7
        if register & 0x80:
            register = ((register << 1) ^ _CRC_POLY) & 0xFF
        else:
            register = (register << 1) & 0xFF
    return register


def _int_to_bits(value: int, width: int) -> np.ndarray:
    return np.array([(value >> s) & 1 for s in range(width - 1, -1, -1)], dtype=np.uint8)


def _bits_to_int(bits: np.ndarray) -> int:
    out = 0
    for bit in bits:
        out = (out << 1) | int(bit)
    return out


@dataclass(frozen=True)
class CrcFrame:
    """A sequenced, CRC-protected downlink frame.

    Wire layout (bits): ``[seq (1)][payload (N)][crc8 (8)]``.
    """

    sequence: int
    payload: np.ndarray

    def __post_init__(self) -> None:
        if self.sequence not in (0, 1):
            raise PacketError(f"stop-and-wait sequence must be 0/1, got {self.sequence}")
        payload = np.asarray(self.payload, dtype=np.uint8)
        if payload.size == 0:
            raise PacketError("payload must be non-empty")
        if np.any((payload != 0) & (payload != 1)):
            raise PacketError("payload bits must be 0/1")
        object.__setattr__(self, "payload", payload)

    def to_bits(self) -> np.ndarray:
        """Serialize to the wire bit vector."""
        body = np.concatenate([np.array([self.sequence], dtype=np.uint8), self.payload])
        return np.concatenate([body, _int_to_bits(crc8(body), CRC_BITS)])

    @classmethod
    def from_bits(cls, bits: np.ndarray) -> "CrcFrame":
        """Parse and verify a received bit vector.

        Raises :class:`PacketError` when the CRC does not check out — the
        receiver treats that as a lost frame (and NACKs).
        """
        data = np.asarray(bits, dtype=np.uint8)
        if data.size < 1 + 1 + CRC_BITS:
            raise PacketError(f"frame of {data.size} bits is too short")
        body, crc_bits = data[:-CRC_BITS], data[-CRC_BITS:]
        if crc8(body) != _bits_to_int(crc_bits):
            raise PacketError("CRC mismatch")
        return cls(sequence=int(body[0]), payload=body[1:])

    @property
    def wire_bits(self) -> int:
        """Total on-air bits."""
        return 1 + self.payload.size + CRC_BITS


@dataclass
class ArqStats:
    """Bookkeeping for an ARQ transfer."""

    rounds: int = 0
    retransmissions: int = 0
    tag_crc_failures: int = 0
    feedback_failures: int = 0
    delivered_payload_bits: int = 0

    def airtime_overhead(self, payload_bits: int) -> float:
        """Wire bits spent per delivered payload bit (>= 1)."""
        if self.delivered_payload_bits == 0:
            return float("inf")
        wire = self.rounds * (payload_bits + 1 + CRC_BITS)
        return wire / self.delivered_payload_bits


@dataclass
class ArqController:
    """Stop-and-wait ARQ over an :class:`IsacSession`.

    Parameters
    ----------
    session:
        The integrated session providing ``run_frame``.
    max_retries:
        Retransmissions allowed per payload before giving up.
    piggyback_bits:
        Tag data bits appended after the ACK field in the feedback frame.
    """

    session: IsacSession
    max_retries: int = 3
    piggyback_bits: int = 2
    _next_sequence: int = 0

    def _tag_decision(self, decoded_bits: np.ndarray, frame: CrcFrame) -> bool:
        """Whether the tag's CRC check on its decoded bits passes."""
        try:
            received = CrcFrame.from_bits(decoded_bits[: frame.wire_bits])
        except PacketError:
            return False
        return received.sequence == frame.sequence

    def send(
        self,
        payload: np.ndarray,
        *,
        rng: int | np.random.Generator | None = None,
    ) -> tuple[bool, ArqStats]:
        """Deliver one payload reliably.  Returns (delivered, stats)."""
        generator = resolve_rng(rng)
        stats = ArqStats()
        frame = CrcFrame(
            sequence=self._next_sequence,
            payload=np.asarray(payload, dtype=np.uint8),
        )
        symbol_bits = self.session.alphabet.symbol_bits
        data_bits = pad_bits_to_symbols(frame.to_bits(), symbol_bits)
        idle_uplink = np.zeros(1, dtype=np.uint8)  # keep-alive signature

        for attempt in range(self.max_retries + 1):
            stats.rounds += 1
            if attempt:
                stats.retransmissions += 1
            # --- DATA frame: payload down, keep-alive up -------------------
            try:
                data_result = self.session.run_frame(
                    data_bits, idle_uplink, rng=generator, localize=False
                )
            except (DetectionError, DecodingError):
                # Radar lost the tag's backscatter entirely: count the
                # round and retry (timeout-equivalent).
                stats.feedback_failures += 1
                continue
            if data_result.erased("uplink"):
                # The session recorded an erasure instead of raising: the
                # radar lost the keep-alive backscatter.  Treat exactly
                # like the legacy exception path — NACK-equivalent retry.
                stats.feedback_failures += 1
                continue
            tag_acked = self._tag_decision(data_result.downlink_bits_decoded, frame)
            if not tag_acked:
                stats.tag_crc_failures += 1
            # --- FEEDBACK frame: short poll down, verdict up ---------------
            control = np.array([int(tag_acked), frame.sequence], dtype=np.uint8)
            piggyback = generator.integers(0, 2, self.piggyback_bits).astype(np.uint8)
            poll_bits = np.zeros(symbol_bits, dtype=np.uint8)
            try:
                feedback = self.session.run_frame(
                    poll_bits,
                    np.concatenate([control, piggyback]),
                    rng=generator,
                    localize=False,
                )
            except (DetectionError, DecodingError):
                stats.feedback_failures += 1
                continue
            if (
                feedback.erased("uplink")
                or feedback.uplink is None
                or feedback.uplink.bits.size < CONTROL_BITS
            ):
                # Erased, missing, or truncated verdict: a stop-and-wait
                # sender cannot distinguish these from feedback loss, so
                # all three NACK.
                stats.feedback_failures += 1
                continue
            observed = feedback.uplink.bits[:CONTROL_BITS]
            acked = bool(observed[0]) and int(observed[1]) == frame.sequence
            if acked:
                stats.delivered_payload_bits += frame.payload.size
                self._next_sequence ^= 1
                return True, stats
            stats.feedback_failures += int(
                not np.array_equal(observed, control)
            )
        return False, stats
