"""Uplink functional BER vs distance (complements Fig. 15's SNR sweep).

The paper derives uplink BER theoretically from measured SNR; this bench
measures it FUNCTIONALLY on the IF-domain simulator — actual FSK bits
through the tag's switch schedule, the radar's IF chain, IF correction,
signature detection, and tone-comparison decisions, with office clutter.
"""

import numpy as np

from conftest import emit
from repro.channel.multipath import Clutter
from repro.core.uplink import UplinkDecoder
from repro.core.ber import random_bits
from repro.radar.config import XBAND_9GHZ
from repro.radar.fmcw import FMCWRadar, Scatterer
from repro.sim.results import format_table
from repro.components.van_atta import VanAttaArray
from repro.tag.modulator import ModulationScheme, UplinkModulator
from repro.waveform.frame import FrameSchedule

DISTANCES_M = [0.5, 2.0, 4.0, 7.0]
BITS_PER_TRIAL = 8
TRIALS = 10


def run_sweep():
    modulator = UplinkModulator(
        modulation_rate_hz=2500.0,
        chirp_period_s=120e-6,
        chirps_per_bit=32,
        scheme=ModulationScheme.FSK,
    )
    van_atta = VanAttaArray()
    clutter = Clutter.office(rng=0)
    radar = FMCWRadar(XBAND_9GHZ)
    decoder = UplinkDecoder(modulator)
    chirp = XBAND_9GHZ.chirp(80e-6)
    frequency = XBAND_9GHZ.center_frequency_hz
    on_rcs, off_rcs = van_atta.modulated_rcs_amplitudes(frequency)
    off_factor = float(np.sqrt(off_rcs / on_rcs))

    rows = []
    bers = {}
    for distance in DISTANCES_M:
        errors = 0
        total = 0
        detections = 0
        for trial in range(TRIALS):
            bits = random_bits(BITS_PER_TRIAL, rng=trial)
            frame = FrameSchedule.from_chirps(
                [chirp] * (BITS_PER_TRIAL * 32), 120e-6
            )
            times = np.array([slot.start_time_s for slot in frame.slots])
            states = modulator.states_for_bits(bits, times)
            scatterers = [
                Scatterer(
                    range_m=distance,
                    rcs_m2=van_atta.rcs_m2(frequency),
                    amplitude_schedule=np.where(states, 1.0, off_factor),
                )
            ] + [
                Scatterer(range_m=r.range_m, rcs_m2=r.rcs_m2, angle_deg=r.angle_deg)
                for r in clutter.reflectors
            ]
            if_frame = radar.receive_frame(
                frame, scatterers, rng=int(distance * 100) + trial
            )
            result = decoder.decode(if_frame, num_bits=BITS_PER_TRIAL)
            errors += int(np.sum(result.bits != bits))
            total += BITS_PER_TRIAL
            detections += int(abs(result.detection.range_m - distance) < 0.2)
        bers[distance] = errors / total
        rows.append(
            [
                f"{distance:.1f}",
                f"{errors / total:.2e}",
                f"{detections}/{TRIALS}",
            ]
        )
    return rows, bers


def test_uplink_functional_ber(benchmark):
    rows, bers = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = format_table(
        ["distance (m)", "uplink BER (FSK)", "tag detections"], rows
    )
    table += f"\n({TRIALS}x{BITS_PER_TRIAL} bits/point, office clutter, 32 chirps/bit)"
    emit("uplink_functional_ber", table)

    # Paper claim: uplink works across the whole envelope (its SNR margin
    # is large thanks to retro-reflectivity + processing gain).
    for distance, ber in bers.items():
        assert ber <= 0.05, f"uplink broken at {distance} m"
    assert bers[7.0] <= 0.05
