"""RNG plumbing and argument-validation helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.rng import resolve_rng, spawn_streams
from repro.utils.validation import (
    ensure_finite,
    ensure_in_range,
    ensure_positive,
    ensure_probability,
)


class TestResolveRng:
    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_seed_is_deterministic(self):
        a = resolve_rng(42).integers(0, 1000, 10)
        b = resolve_rng(42).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert resolve_rng(gen) is gen

    def test_numpy_integer_seed(self):
        assert isinstance(resolve_rng(np.int64(7)), np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            resolve_rng("seed")


class TestSpawnStreams:
    def test_count(self):
        assert len(spawn_streams(0, 5)) == 5

    def test_streams_independent(self):
        a, b = spawn_streams(0, 2)
        assert not np.array_equal(a.integers(0, 1000, 20), b.integers(0, 1000, 20))

    def test_reproducible(self):
        first = [s.integers(0, 1000, 5) for s in spawn_streams(7, 3)]
        second = [s.integers(0, 1000, 5) for s in spawn_streams(7, 3)]
        for x, y in zip(first, second):
            np.testing.assert_array_equal(x, y)

    def test_zero_count(self):
        assert spawn_streams(0, 0) == []

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_streams(0, -1)


class TestValidation:
    def test_positive_accepts(self):
        assert ensure_positive("x", 2.5) == 2.5

    def test_positive_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            ensure_positive("x", 0.0)

    def test_positive_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            ensure_positive("x", float("nan"))

    def test_finite_rejects_inf(self):
        with pytest.raises(ConfigurationError):
            ensure_finite("x", float("inf"))

    def test_finite_rejects_string(self):
        with pytest.raises(ConfigurationError):
            ensure_finite("x", "hello")

    def test_in_range_inclusive(self):
        assert ensure_in_range("x", 1.0, 1.0, 2.0) == 1.0

    def test_in_range_exclusive_boundary(self):
        with pytest.raises(ConfigurationError):
            ensure_in_range("x", 1.0, 1.0, 2.0, low_inclusive=False)

    def test_in_range_rejects_above(self):
        with pytest.raises(ConfigurationError):
            ensure_in_range("x", 3.0, 0.0, 2.0)

    def test_probability(self):
        assert ensure_probability("p", 0.5) == 0.5
        with pytest.raises(ConfigurationError):
            ensure_probability("p", 1.5)

    def test_error_message_contains_name_and_value(self):
        with pytest.raises(ConfigurationError, match="my_param.*-3"):
            ensure_positive("my_param", -3)
