"""Slow-time (Doppler / tag-modulation) processing.

After IF correction the frame is a (chirps x range-bins) matrix on a
common grid.  An FFT across chirps at each range cell separates static
clutter (DC), movers (Doppler tones), and BiScatter tags — whose square-
wave OOK switching appears as a strong line at the modulation frequency
plus odd harmonics ("the second FFT across chirps converts the tag
modulation into a sinc function").
"""

from __future__ import annotations

import numpy as np

from repro.utils.dsp import next_pow2, _make_window
from repro.utils.validation import ensure_positive


def slow_time_spectrum(
    aligned: np.ndarray,
    chirp_period_s: float,
    *,
    window: str = "hann",
    n_fft: int | None = None,
    remove_dc: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-range-cell spectrum across chirps.

    Parameters
    ----------
    aligned:
        (num_chirps, num_range_bins) complex matrix on a common range grid.
    chirp_period_s:
        Slow-time sample interval (the frame's uniform chirp period).
    remove_dc:
        Subtract each cell's slow-time mean first — the cheap equivalent of
        static-background subtraction, isolating modulated energy.

    Returns
    -------
    (frequencies_hz, spectrum):
        ``frequencies_hz`` spans [0, 1 / (2 T_period)); ``spectrum`` has
        shape (num_freqs, num_range_bins), magnitude of the slow-time FFT.
    """
    ensure_positive("chirp_period_s", chirp_period_s)
    matrix = np.asarray(aligned)
    if matrix.ndim != 2:
        raise ValueError(f"aligned must be 2-D, got shape {matrix.shape}")
    num_chirps = matrix.shape[0]
    if num_chirps < 4:
        raise ValueError(f"need at least 4 chirps for slow-time analysis, got {num_chirps}")
    if remove_dc:
        matrix = matrix - matrix.mean(axis=0, keepdims=True)
    win = _make_window(window, num_chirps)[:, None]
    size = next_pow2(num_chirps) if n_fft is None else int(n_fft)
    spectrum = np.fft.fft(matrix * win, n=size, axis=0) / win.sum()
    half = size // 2
    freqs = np.arange(half) / (size * chirp_period_s)
    return freqs, np.abs(spectrum[:half])


def range_doppler_map(
    aligned: np.ndarray,
    chirp_period_s: float,
    *,
    window: str = "hann",
) -> tuple[np.ndarray, np.ndarray]:
    """Classic range-Doppler magnitude map (fftshifted Doppler axis).

    Returns ``(doppler_frequencies_hz, map)`` with map shape
    (num_doppler_bins, num_range_bins).
    """
    ensure_positive("chirp_period_s", chirp_period_s)
    matrix = np.asarray(aligned)
    num_chirps = matrix.shape[0]
    win = _make_window(window, num_chirps)[:, None]
    size = next_pow2(num_chirps)
    spectrum = np.fft.fftshift(np.fft.fft(matrix * win, n=size, axis=0), axes=0) / win.sum()
    freqs = np.fft.fftshift(np.fft.fftfreq(size, d=chirp_period_s))
    return freqs, np.abs(spectrum)


def square_wave_signature(
    modulation_rate_hz: float,
    frequencies_hz: np.ndarray,
    *,
    num_harmonics: int = 3,
    tolerance_hz: float | None = None,
    line_width_bins: int = 1,
) -> np.ndarray:
    """Matched-filter template for a 50%-duty square-wave OOK signature.

    A square wave's spectrum has odd harmonics with 1/k amplitudes; the
    template places those weights at the nearest frequency samples.

    ``line_width_bins`` widens each harmonic into a boxcar of that many
    bins: when the tag's modulation is phase-coherent only over a data-bit
    block (``chirps_per_bit`` chirps), each spectral line smears to roughly
    ``n_fft / chirps_per_bit`` bins and a one-bin template would miss most
    of its energy.
    """
    ensure_positive("modulation_rate_hz", modulation_rate_hz)
    if line_width_bins < 1:
        raise ValueError(f"line_width_bins must be >= 1, got {line_width_bins}")
    freqs = np.asarray(frequencies_hz, dtype=float)
    if freqs.size < 2:
        raise ValueError("need at least 2 frequency samples")
    template = np.zeros_like(freqs)
    spacing = freqs[1] - freqs[0]
    tol = spacing if tolerance_hz is None else tolerance_hz
    half_width = (line_width_bins - 1) // 2
    for harmonic in range(1, 2 * num_harmonics, 2):
        target = harmonic * modulation_rate_hz
        if target > freqs[-1] + tol:
            break
        index = int(np.argmin(np.abs(freqs - target)))
        if abs(freqs[index] - target) <= tol:
            low = max(index - half_width, 0)
            high = min(index + half_width + 1, freqs.size)
            template[low:high] = np.maximum(template[low:high], 1.0 / harmonic)
    norm = np.linalg.norm(template)
    return template / norm if norm > 0 else template


def estimate_velocity(
    aligned: np.ndarray,
    range_bin: int,
    chirp_period_s: float,
    carrier_frequency_hz: float,
    *,
    window: str = "hann",
    remove_dc: bool = True,
    exclude_frequencies_hz: "list[float] | None" = None,
    exclude_guard_bins: int = 3,
) -> float:
    """Radial velocity of the target occupying one range cell.

    Signed slow-time Doppler peak of the cell, converted by
    ``v = f_d * c / (2 f_c)`` (positive = receding).

    Parameters
    ----------
    remove_dc:
        Subtract the slow-time mean first so static clutter sharing the
        cell does not mask a mover.  Disable when the target itself may be
        static (its own line then sits at DC).
    exclude_frequencies_hz:
        Slow-time lines to mask from the peak search (both signs) — a
        modulating BiScatter tag puts strong lines at ``+/- (f_d +/- k
        f_mod)``, which would otherwise masquerade as huge velocities.
    """
    from repro.constants import SPEED_OF_LIGHT
    from repro.utils.dsp import parabolic_peak_offset

    ensure_positive("chirp_period_s", chirp_period_s)
    ensure_positive("carrier_frequency_hz", carrier_frequency_hz)
    matrix = np.asarray(aligned)
    if not 0 <= range_bin < matrix.shape[1]:
        raise ValueError(f"range_bin {range_bin} outside [0, {matrix.shape[1]})")
    series = matrix[:, range_bin]
    if remove_dc:
        series = series - series.mean()
    n = series.size
    win = _make_window(window, n)
    size = next_pow2(n) * 4
    spectrum = np.fft.fftshift(np.fft.fft(series * win, n=size))
    freqs = np.fft.fftshift(np.fft.fftfreq(size, d=chirp_period_s))
    power = np.abs(spectrum) ** 2
    if exclude_frequencies_hz:
        bin_width = freqs[1] - freqs[0]
        for line in exclude_frequencies_hz:
            for signed in (line, -line):
                index = int(np.argmin(np.abs(freqs - signed)))
                low = max(index - exclude_guard_bins, 0)
                power[low : index + exclude_guard_bins + 1] = 0.0
    peak = int(np.argmax(power))
    doppler = freqs[peak]
    if 0 < peak < size - 1:
        delta = parabolic_peak_offset(power[peak - 1], power[peak], power[peak + 1])
        doppler += delta * (freqs[1] - freqs[0])
    # IF convention here: the dechirped phase carries +2*pi*f0*tau, so a
    # receding target's growing delay advances the slow-time phase —
    # positive Doppler frequency maps to positive (receding) velocity.
    return float(doppler * SPEED_OF_LIGHT / (2.0 * carrier_frequency_hz))


def modulation_signature_score(
    spectrum_column: np.ndarray,
    frequencies_hz: np.ndarray,
    modulation_rate_hz: float,
    *,
    num_harmonics: int = 3,
) -> float:
    """Correlation of one range cell's slow-time spectrum with the tag
    signature — the per-cell statistic used to localize the tag."""
    template = square_wave_signature(
        modulation_rate_hz, frequencies_hz, num_harmonics=num_harmonics
    )
    column = np.abs(np.asarray(spectrum_column, dtype=float))
    return float(np.dot(column, template))
