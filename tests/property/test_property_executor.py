"""Property-based tests: chunking and index-keyed seeding invariants.

The executor's determinism contract rests on two properties proven here
across the whole input space rather than at hand-picked sizes:

* every chunking of ``N`` trials is an exact, ordered partition of
  ``0..N-1``, and per-trial results reassemble identically no matter how
  chunks complete;
* ``spawn_streams`` is index-keyed — child ``i`` is a pure function of
  ``(root seed, i)``, unaffected by how many siblings exist or which
  chunk evaluates it, and it matches NumPy's own ``Generator.spawn``.
"""

import numpy as np
from hypothesis import given, strategies as st

from repro.sim.executor import ExecutionPlan, chunk_indices, map_trials
from repro.utils.rng import SeedSpec, spawn_streams

num_trials_strategy = st.integers(min_value=0, max_value=300)
chunk_sizes = st.integers(min_value=1, max_value=64)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestChunkIndicesPartition:
    @given(num_trials=num_trials_strategy, chunk_size=chunk_sizes)
    def test_exact_cover_no_overlap(self, num_trials, chunk_size):
        chunks = chunk_indices(num_trials, chunk_size)
        flattened = [index for chunk in chunks for index in chunk]
        assert flattened == list(range(num_trials))

    @given(num_trials=num_trials_strategy, chunk_size=chunk_sizes)
    def test_chunk_sizes_bounded(self, num_trials, chunk_size):
        chunks = chunk_indices(num_trials, chunk_size)
        assert all(0 < len(chunk) <= chunk_size for chunk in chunks)
        # Only the last chunk may be short.
        assert all(len(chunk) == chunk_size for chunk in chunks[:-1])

    @given(
        num_trials=st.integers(min_value=1, max_value=120),
        chunk_size=chunk_sizes,
        shuffle_seed=seeds,
    )
    def test_order_independent_reassembly(self, num_trials, chunk_size, shuffle_seed):
        """Chunks evaluated in any completion order rebuild the same list."""
        chunks = chunk_indices(num_trials, chunk_size)
        in_order = [index * 10 for chunk in chunks for index in chunk]

        order = np.random.default_rng(shuffle_seed).permutation(len(chunks))
        per_chunk = {}
        for chunk_number in order:
            per_chunk[int(chunk_number)] = [
                index * 10 for index in chunks[int(chunk_number)]
            ]
        reassembled = []
        for chunk_number in range(len(chunks)):
            reassembled.extend(per_chunk[chunk_number])
        assert reassembled == in_order


    @given(num_trials=num_trials_strategy, chunk_size=chunk_sizes)
    def test_every_chunk_nonempty_and_timeable(self, num_trials, chunk_size):
        """No chunking ever produces an empty chunk, so every chunk has a
        well-defined ``start_index`` and constructs a valid ChunkTiming."""
        from repro.sim.executor import ChunkTiming

        chunks = chunk_indices(num_trials, chunk_size)
        for chunk_number, chunk in enumerate(chunks):
            assert len(chunk) >= 1
            timing = ChunkTiming(
                chunk_index=chunk_number,
                start_index=chunk[0],
                num_trials=len(chunk),
                seconds=0.0,
            )
            assert timing.start_index == chunk[0]


def _identity_chunk(payload, spec, indices):
    return [int(spec.stream(index).integers(0, 1 << 30)) for index in indices]


class TestMapTrialsChunkInvariance:
    @given(
        num_trials=st.integers(min_value=0, max_value=40),
        chunk_size=st.integers(min_value=1, max_value=16),
        seed=seeds,
    )
    def test_serial_results_chunk_size_invariant(self, num_trials, chunk_size, seed):
        baseline, _ = map_trials(_identity_chunk, None, num_trials, rng=seed)
        chunked, report = map_trials(
            _identity_chunk,
            None,
            num_trials,
            rng=seed,
            plan=ExecutionPlan(workers=1, chunk_size=chunk_size),
        )
        assert chunked == baseline
        assert sum(t.num_trials for t in report.chunks) == num_trials


class TestIndexKeyedSpawn:
    @given(seed=seeds, count=st.integers(min_value=0, max_value=20))
    def test_matches_numpy_generator_spawn(self, seed, count):
        ours = spawn_streams(seed, count)
        numpy_children = np.random.default_rng(seed).spawn(count)
        for mine, theirs in zip(ours, numpy_children):
            np.testing.assert_array_equal(
                mine.integers(0, 1 << 16, 4), theirs.integers(0, 1 << 16, 4)
            )

    @given(seed=seeds, count=st.integers(min_value=1, max_value=20))
    def test_child_independent_of_sibling_count(self, seed, count):
        """Stream ``i`` is the same whether 1 or ``count`` siblings exist."""
        full = spawn_streams(seed, count)
        spec = SeedSpec.from_rng(seed)
        for index in range(count):
            np.testing.assert_array_equal(
                spec.stream(index).integers(0, 1 << 16, 4),
                full[index].integers(0, 1 << 16, 4),
            )

    @given(seed=seeds, index=st.integers(min_value=0, max_value=500))
    def test_stream_is_pure_function_of_seed_and_index(self, seed, index):
        a = SeedSpec.from_rng(seed).stream(index).integers(0, 1 << 16, 6)
        b = SeedSpec.from_rng(seed).stream(index).integers(0, 1 << 16, 6)
        np.testing.assert_array_equal(a, b)

    @given(seed=seeds)
    def test_distinct_indices_give_distinct_streams(self, seed):
        spec = SeedSpec.from_rng(seed)
        draws = [tuple(spec.stream(i).integers(0, 1 << 30, 4)) for i in range(8)]
        assert len(set(draws)) == len(draws)

    @given(seed=seeds, index=st.integers(min_value=0, max_value=100))
    def test_generator_root_matches_int_root(self, seed, index):
        """A Generator rng spec and its int seed derive the same children."""
        from_int = SeedSpec.from_rng(seed).stream(index)
        from_gen = SeedSpec.from_rng(np.random.default_rng(seed)).stream(index)
        np.testing.assert_array_equal(
            from_int.integers(0, 1 << 16, 4), from_gen.integers(0, 1 << 16, 4)
        )
