"""Two-ray floor-bounce multipath model."""

import numpy as np
import pytest

from repro.channel.link_budget import DownlinkBudget
from repro.channel.two_ray import TwoRayDownlinkBudget, TwoRayGeometry
from repro.errors import LinkBudgetError


class TestGeometry:
    def test_path_lengths_ordered(self):
        geometry = TwoRayGeometry(tx_height_m=1.0, rx_height_m=0.5)
        direct, reflected = geometry.path_lengths_m(4.0)
        assert reflected > direct > 0

    def test_equal_heights_direct_is_ground_distance(self):
        geometry = TwoRayGeometry(tx_height_m=1.0, rx_height_m=1.0)
        direct, _ = geometry.path_lengths_m(3.0)
        assert direct == pytest.approx(3.0)

    def test_gain_bounded_by_coefficient(self):
        geometry = TwoRayGeometry(reflection_coefficient=-0.7)
        gains = [geometry.gain_factor(d, 9e9) for d in np.linspace(0.5, 10, 300)]
        assert max(gains) <= (1.7) ** 2 + 1e-9
        assert min(gains) >= (0.3) ** 2 / 4  # d_dir/d_ref < 1 softens the floor

    def test_ripple_exists(self):
        geometry = TwoRayGeometry()
        gains_db = [geometry.gain_factor_db(d, 9e9) for d in np.linspace(1.0, 7.0, 500)]
        assert max(gains_db) - min(gains_db) > 6.0  # real fades

    def test_zero_coefficient_is_free_space(self):
        geometry = TwoRayGeometry(reflection_coefficient=0.0)
        for distance in (1.0, 3.0, 7.0):
            assert geometry.gain_factor(distance, 9e9) == pytest.approx(1.0)

    def test_null_distances_found(self):
        geometry = TwoRayGeometry()
        nulls = geometry.null_distances_m(9e9, max_distance_m=8.0)
        assert nulls.size > 0
        # Each null really is a deep fade.
        for null in nulls[:3]:
            assert geometry.gain_factor(float(null), 9e9) < 0.5

    def test_validation(self):
        with pytest.raises(Exception):
            TwoRayGeometry(tx_height_m=0.0)
        with pytest.raises(Exception):
            TwoRayGeometry(reflection_coefficient=-1.5)
        with pytest.raises(LinkBudgetError):
            TwoRayGeometry().path_lengths_m(0.0)


class TestTwoRayBudget:
    def test_ripple_applied_twice_in_video_domain(self):
        base = DownlinkBudget()
        geometry = TwoRayGeometry()
        budget = TwoRayDownlinkBudget(base=base, geometry=geometry)
        distance = 3.0
        expected = base.video_snr_db(distance) + 2 * geometry.gain_factor_db(
            distance, base.frequency_hz
        )
        assert budget.video_snr_db(distance) == pytest.approx(expected)

    def test_fades_cost_snr_peaks_gain_it(self):
        base = DownlinkBudget()
        budget = TwoRayDownlinkBudget(base=base, geometry=TwoRayGeometry())
        distances = np.linspace(1.0, 7.0, 400)
        deltas = [
            budget.video_snr_db(float(d)) - base.video_snr_db(float(d))
            for d in distances
        ]
        assert min(deltas) < -6.0
        assert max(deltas) > 3.0

    def test_detection_snr_includes_processing_gain(self):
        base = DownlinkBudget()
        budget = TwoRayDownlinkBudget(base=base, geometry=TwoRayGeometry())
        assert budget.detection_snr_db(3.0, 96e-6) > budget.video_snr_db(3.0)

    def test_ber_vs_distance_ripples(self, alphabet):
        """The multipath signature the paper's indoor curves carry: BER is
        not monotonic in distance — a fade at short range can be worse
        than a peak further out."""
        from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials
        from repro.radar.config import XBAND_9GHZ

        base = DownlinkBudget(
            tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
            radar_antenna=XBAND_9GHZ.antenna,
            frequency_hz=XBAND_9GHZ.center_frequency_hz,
        )
        geometry = TwoRayGeometry()
        budget = TwoRayDownlinkBudget(base=base, geometry=geometry)
        # Pick a fade and a nearby peak from the model itself.
        nulls = geometry.null_distances_m(base.frequency_hz, max_distance_m=8.0)
        fade = float(nulls[np.argmin(np.abs(nulls - 6.0))])
        peak_candidates = np.linspace(max(fade - 1.0, 1.0), fade + 1.0, 100)
        peak = float(
            peak_candidates[
                np.argmax([budget.video_snr_db(float(d)) for d in peak_candidates])
            ]
        )

        def ber_at(distance, seed):
            config = DownlinkTrialConfig(
                radar_config=XBAND_9GHZ,
                alphabet=alphabet,
                distance_m=distance,
                snr_override_db=budget.video_snr_db(distance),
                num_frames=25,
                payload_symbols_per_frame=16,
            )
            return run_downlink_trials(config, rng=seed).ber

        assert ber_at(fade, 1) > ber_at(peak, 2)
