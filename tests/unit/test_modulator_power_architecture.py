"""Uplink modulator, tag power model, and assembled tag architecture."""

import numpy as np
import pytest

from repro.channel.link_budget import DownlinkBudget
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.errors import ConfigurationError
from repro.tag.architecture import BiScatterTag
from repro.tag.modulator import ModulationScheme, UplinkModulator
from repro.tag.power import PowerMode, TagPowerModel


@pytest.fixture
def modulator():
    return UplinkModulator(
        modulation_rate_hz=2000.0, chirp_period_s=120e-6, chirps_per_bit=16
    )


class TestModulator:
    def test_nyquist_enforced(self):
        with pytest.raises(ConfigurationError):
            UplinkModulator(modulation_rate_hz=5000.0, chirp_period_s=120e-6)

    def test_fsk_rate1_nyquist_enforced(self):
        with pytest.raises(ConfigurationError):
            UplinkModulator(
                modulation_rate_hz=3000.0,
                chirp_period_s=120e-6,
                scheme=ModulationScheme.FSK,
            )

    def test_data_rate(self, modulator):
        assert modulator.data_rate_bps() == pytest.approx(1.0 / (16 * 120e-6))

    def test_ook_bit0_steady_reflective(self, modulator):
        times = np.arange(32) * 120e-6
        states = modulator.states_for_bits(np.array([0, 1]), times)
        assert np.all(states[:16])  # bit 0: no signature
        assert 0 < states[16:].sum() < 16  # bit 1: toggling

    def test_fsk_both_bits_toggle(self):
        modulator = UplinkModulator(
            modulation_rate_hz=2000.0,
            chirp_period_s=120e-6,
            chirps_per_bit=16,
            scheme=ModulationScheme.FSK,
        )
        times = np.arange(32) * 120e-6
        states = modulator.states_for_bits(np.array([0, 1]), times)
        assert 0 < states[:16].sum() < 16
        assert 0 < states[16:].sum() < 16

    def test_frame_too_short_rejected(self, modulator):
        with pytest.raises(ConfigurationError):
            modulator.states_for_bits(np.array([0, 1]), np.arange(10) * 120e-6)

    def test_non_binary_rejected(self, modulator):
        with pytest.raises(ConfigurationError):
            modulator.states_for_bits(np.array([0, 2]), np.arange(32) * 120e-6)

    def test_beacon_states_toggle_at_rate(self, modulator):
        times = np.arange(100) * 120e-6
        states = modulator.beacon_states(times)
        # ~50% duty.
        assert states.mean() == pytest.approx(0.5, abs=0.1)

    def test_amplitude_schedule_mapping(self, modulator):
        states = np.array([True, False, True])
        schedule = modulator.amplitude_schedule(states, reflective_amplitude=1.0, absorptive_amplitude=0.1)
        np.testing.assert_allclose(schedule, [1.0, 0.1, 1.0])

    def test_trailing_slots_idle_reflective(self, modulator):
        times = np.arange(40) * 120e-6
        states = modulator.states_for_bits(np.array([1]), times)
        assert np.all(states[16:])


class TestPowerModel:
    def test_continuous_matches_paper_48mw(self):
        model = TagPowerModel.prototype()
        assert model.continuous_power_w() == pytest.approx(48e-3, rel=0.02)

    def test_uplink_only_below_6uw(self):
        model = TagPowerModel.prototype()
        assert model.uplink_only_power_w() < 6e-6

    def test_sequential_interpolates(self):
        model = TagPowerModel.prototype()
        half = model.sequential_power_w(0.5)
        assert model.uplink_only_power_w() < half < model.downlink_only_power_w()

    def test_sequential_duty_bounds(self):
        model = TagPowerModel.prototype()
        with pytest.raises(Exception):
            model.sequential_power_w(1.5)

    def test_projected_ic_about_4mw(self):
        model = TagPowerModel.projected_ic()
        assert model.continuous_power_w() == pytest.approx(4e-3, rel=0.15)

    def test_power_mode_dispatch(self):
        model = TagPowerModel.prototype()
        assert model.power_w(PowerMode.CONTINUOUS) == model.continuous_power_w()
        assert model.power_w(PowerMode.SEQUENTIAL, downlink_duty=0.2) == pytest.approx(
            model.sequential_power_w(0.2)
        )

    def test_battery_life(self):
        model = TagPowerModel.prototype()
        hours = model.battery_life_hours(PowerMode.CONTINUOUS, battery_mwh=1000.0)
        assert hours == pytest.approx(1000.0 / (model.continuous_power_w() * 1e3))


class TestTagArchitecture:
    def test_decoder_design_mismatch_rejected(self):
        tag = BiScatterTag(decoder_design=DecoderDesign.from_inches(18.0))
        alphabet = CsskAlphabet.design(
            bandwidth_hz=1e9,
            decoder=DecoderDesign.from_inches(45.0),
            symbol_bits=3,
            chirp_period_s=120e-6,
        )
        with pytest.raises(ValueError):
            tag.decoder(alphabet)

    def test_decoder_created_for_matching_design(self, alphabet):
        tag = BiScatterTag(decoder_design=alphabet.decoder)
        decoder = tag.decoder(alphabet)
        assert decoder.alphabet is alphabet

    def test_modulation_amplitude_factors(self, alphabet):
        tag = BiScatterTag(decoder_design=alphabet.decoder)
        on, off = tag.modulation_amplitude_factors(9e9)
        assert on == 1.0
        assert 0 < off < 0.1

    def test_amplitude_schedule_for_states(self, alphabet):
        tag = BiScatterTag(decoder_design=alphabet.decoder)
        schedule = tag.amplitude_schedule_for_states(np.array([True, False]), 9e9)
        assert schedule[0] == 1.0
        assert schedule[1] < 0.1

    def test_frontend_binding(self, alphabet):
        tag = BiScatterTag(decoder_design=alphabet.decoder)
        budget = DownlinkBudget()
        frontend = tag.frontend(budget)
        assert frontend.delta_t_s == pytest.approx(alphabet.decoder.delta_t_s)

    def test_with_modulator(self, alphabet, modulator=None):
        tag = BiScatterTag(decoder_design=alphabet.decoder)
        new_modulator = UplinkModulator(modulation_rate_hz=1000.0, chirp_period_s=120e-6)
        updated = tag.with_modulator(new_modulator)
        assert updated.modulator is new_modulator
        assert tag.modulator is None

    def test_average_power_delegates(self, alphabet):
        tag = BiScatterTag(decoder_design=alphabet.decoder)
        assert tag.average_power_w(PowerMode.CONTINUOUS) == pytest.approx(48e-3, rel=0.02)
