"""Serve scheduler: priority queue, bounded backpressure, in-flight dedup.

The scheduler owns the computational heart of the server.  Its contract:

* **Single-threaded control plane.**  All scheduler state is mutated on
  the event loop only.  Computations run in a ``ThreadPoolExecutor``
  (``pool_workers`` slots) and report back via the loop, so no locks are
  needed beyond the :class:`repro.store.InFlightRegistry`'s own.
* **Priority + FIFO.**  Queued points order by ``(priority, sequence)``:
  lower priority number first, submission order within a priority.
* **Bounded backpressure.**  At most ``max_pending`` points may be
  queued or running.  A submit that would exceed the bound is rejected
  *deterministically* — never partially admitted, never queued hidden —
  with a ``retry_after_s`` hint sized to the backlog.
* **In-flight dedup.**  Points are keyed by store fingerprint (the same
  fingerprint the engines cache results under).  A submit whose
  fingerprint is already queued/running subscribes to the existing
  :class:`PointTask` instead of creating work; every subscriber receives
  the one result.  Completed fingerprints leave the registry — from then
  on the durable store dedupes.
* **Cancellation.**  Dropping a job (client request or disconnect)
  unsubscribes it from its tasks.  A queued task with no subscribers
  left is cancelled before it ever claims a pool slot; a *running* task
  finishes (its result still lands in the store, so the work is not
  wasted) but delivers to nobody.
* **Graceful drain.**  ``drain()`` stops admissions and waits for every
  pending point to resolve, so shutdown never truncates a stream.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
from typing import Any, Optional

from repro import obs
from repro.obs import runtime as _obs_runtime
from repro.sim.executor import ExecutionPlan
from repro.store.inflight import InFlightRegistry

__all__ = ["PointTask", "Job", "JobScheduler"]


class PointTask:
    """One unit of schedulable work: a point spec plus its subscribers."""

    __slots__ = ("fingerprint", "spec", "subscribers", "state", "cached")

    def __init__(self, fingerprint: str, spec) -> None:
        self.fingerprint = fingerprint
        self.spec = spec
        self.subscribers: "list[tuple[Job, int]]" = []
        self.state = "queued"  # queued | running | done | cancelled
        self.cached = False


class Job:
    """One accepted submission: its session, identity, and progress."""

    def __init__(self, session, client_id: str, job_id: str, kind: str,
                 num_points: int) -> None:
        self.session = session
        self.client_id = client_id
        self.job_id = job_id
        self.kind = kind
        self.num_points = num_points
        self.tasks: "list[PointTask]" = []
        self.remaining = num_points
        self.cancelled = False


class JobScheduler:
    """Shared executor-pool front end for every client session.

    Construct on the event loop (``__init__`` captures the running
    loop); ``submit``/``cancel_job``/``status`` are loop-thread-only.
    """

    def __init__(
        self,
        *,
        execution: "ExecutionPlan | None" = None,
        store=None,
        pool_workers: int = 2,
        max_pending: int = 256,
        retry_after_s: float = 1.0,
    ) -> None:
        from concurrent.futures import ThreadPoolExecutor

        if pool_workers < 1:
            raise ValueError(f"pool_workers must be >= 1, got {pool_workers}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.execution = execution if execution is not None else ExecutionPlan()
        self.store = store
        self.pool_workers = pool_workers
        self.max_pending = max_pending
        self.retry_after_s = retry_after_s
        self.inflight = InFlightRegistry()
        self._loop = asyncio.get_running_loop()
        self._queue: "asyncio.PriorityQueue" = asyncio.PriorityQueue()
        self._sequence = itertools.count()
        self._job_ids = itertools.count(1)
        self._pending = 0  # queued + running, non-cancelled
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._pool = ThreadPoolExecutor(
            max_workers=pool_workers, thread_name_prefix="repro-serve"
        )
        self._workers = [
            asyncio.ensure_future(self._worker()) for _ in range(pool_workers)
        ]
        self._running = 0
        self.counters = {
            "jobs_accepted": 0,
            "jobs_rejected": 0,
            "jobs_cancelled": 0,
            "jobs_completed": 0,
            "points_submitted": 0,
            "points_computed": 0,
            "points_deduped": 0,
            "points_cancelled": 0,
            "points_failed": 0,
        }

    # -- admission -----------------------------------------------------------

    def submit(self, session, client_id: str, parsed, priority: int = 0
               ) -> "tuple[dict[str, Any], Optional[Job]]":
        """Admit (or reject) a parsed job; returns ``(reply, job|None)``.

        Admission is all-or-nothing: the capacity check counts every
        *new* point the job would enqueue (deduped points are free), and
        a rejection leaves the scheduler exactly as it was.
        """
        if self._draining:
            self.counters["jobs_rejected"] += 1
            return {
                "type": "rejected", "id": client_id,
                "reason": "draining", "retry_after_s": None,
            }, None
        fingerprints = [spec.fingerprint() for spec in parsed.points]
        new_points = sum(
            1 for fingerprint in fingerprints
            if self.inflight.peek(fingerprint) is None
        )
        if self._pending + new_points > self.max_pending:
            self.counters["jobs_rejected"] += 1
            retry_after = self._retry_after()
            if _obs_runtime._enabled:
                obs.inc("serve.jobs.rejected")
                obs.log(
                    "serve.job.rejected", id=client_id,
                    pending=self._pending, new_points=new_points,
                    retry_after_s=retry_after,
                )
            return {
                "type": "rejected", "id": client_id,
                "reason": (
                    f"queue full ({self._pending} pending, "
                    f"{new_points} new points over the {self.max_pending} cap)"
                ),
                "retry_after_s": retry_after,
            }, None

        job = Job(
            session, client_id, f"job-{next(self._job_ids)}",
            parsed.kind, len(parsed.points),
        )
        for spec, fingerprint in zip(parsed.points, fingerprints):
            task, created = self.inflight.claim(
                fingerprint,
                lambda fingerprint=fingerprint, spec=spec: PointTask(
                    fingerprint, spec
                ),
            )
            task.subscribers.append((job, len(job.tasks)))
            job.tasks.append(task)
            if created:
                self._pending += 1
                self._idle.clear()
                self.counters["points_submitted"] += 1
                self._queue.put_nowait((priority, next(self._sequence), task))
            else:
                self.counters["points_deduped"] += 1
                if _obs_runtime._enabled:
                    obs.inc("serve.points.deduped")
        self.counters["jobs_accepted"] += 1
        if _obs_runtime._enabled:
            obs.inc("serve.jobs.accepted")
            obs.log(
                "serve.job.accepted", id=client_id, job_id=job.job_id,
                kind=job.kind, points=job.num_points,
            )
        return {
            "type": "accepted", "id": client_id, "job_id": job.job_id,
            "kind": job.kind, "points": job.num_points,
        }, job

    def _retry_after(self) -> float:
        """Deterministic resubmission hint scaled to the backlog."""
        backlog_rounds = self._pending / (self.pool_workers * self.max_pending)
        return round(self.retry_after_s * max(1.0, backlog_rounds), 3)

    # -- cancellation --------------------------------------------------------

    def cancel_job(self, job: Job, reason: str = "client request") -> int:
        """Unsubscribe ``job`` everywhere; returns points actually cancelled.

        Queued tasks nobody else wants are cancelled outright (lazy heap
        removal — the worker skips them on pop).  Running tasks finish to
        keep the pool healthy; their results land in the store.
        """
        if job.cancelled:
            return 0
        job.cancelled = True
        cancelled = 0
        for task in job.tasks:
            task.subscribers = [
                (subscriber, index) for subscriber, index in task.subscribers
                if subscriber is not job
            ]
            if not task.subscribers and task.state == "queued":
                task.state = "cancelled"
                self.inflight.discard(task.fingerprint)
                self._finish_pending()
                cancelled += 1
        self.counters["jobs_cancelled"] += 1
        self.counters["points_cancelled"] += cancelled
        if _obs_runtime._enabled:
            obs.inc("serve.jobs.cancelled")
            obs.inc("serve.points.cancelled", cancelled)
            obs.log(
                "serve.job.cancelled", id=job.client_id, job_id=job.job_id,
                reason=reason, points_cancelled=cancelled,
            )
        return cancelled

    def _finish_pending(self) -> None:
        self._pending -= 1
        if self._pending == 0:
            self._idle.set()

    # -- the worker loop -----------------------------------------------------

    async def _worker(self) -> None:
        while True:
            _priority, _sequence, task = await self._queue.get()
            if task.state == "cancelled":
                continue
            await self._run_task(task)

    async def _run_task(self, task: PointTask) -> None:
        task.state = "running"
        self._running += 1
        store = self.store
        task.cached = store is not None and store.contains(task.fingerprint)
        plan = self._plan_for(task)
        try:
            payload = await self._loop.run_in_executor(
                self._pool, task.spec.compute, plan, store
            )
        except Exception as error:  # delivered, never fatal to the pool
            self.counters["points_failed"] += 1
            if _obs_runtime._enabled:
                obs.inc("serve.points.failed")
                obs.log(
                    "serve.point.failed",
                    fingerprint=task.fingerprint,
                    error=f"{type(error).__name__}: {error}",
                )
            self._deliver(task, None, error)
        else:
            self.counters["points_computed"] += 1
            if _obs_runtime._enabled:
                obs.inc("serve.points.computed")
            self._deliver(task, payload, None)
        finally:
            task.state = "done"
            self._running -= 1
            self.inflight.discard(task.fingerprint)
            self._finish_pending()

    def _plan_for(self, task: PointTask) -> ExecutionPlan:
        """The shared plan, with a thread-safe progress bridge chained in.

        The executor's parent-side ``on_chunk`` hook fires in the pool
        thread; the bridge trampolines onto the loop so subscribers get
        ``progress`` frames while the point is still computing.
        """
        loop = self._loop
        inner = self.execution.on_chunk

        def hook(timing, chunk_results):
            if inner is not None:
                inner(timing, chunk_results)
            loop.call_soon_threadsafe(
                self._notify_progress, task, timing.num_trials
            )

        return dataclasses.replace(self.execution, on_chunk=hook)

    def _notify_progress(self, task: PointTask, trials: int) -> None:
        for job, index in task.subscribers:
            if job.cancelled:
                continue
            job.session.send({
                "type": "progress", "id": job.client_id, "point": index,
                "trials": trials,
            })

    def _deliver(self, task: PointTask, payload, error) -> None:
        shared = len(task.subscribers) > 1
        for job, index in list(task.subscribers):
            if job.cancelled:
                continue
            if error is not None:
                job.session.send({
                    "type": "error", "id": job.client_id,
                    "message": f"point {index} failed: "
                               f"{type(error).__name__}: {error}",
                })
                self.cancel_job(job, reason="point failure")
                continue
            job.session.send({
                "type": "point", "id": job.client_id, "index": index,
                "kind": task.spec.kind, "payload": payload,
                "fingerprint": task.fingerprint,
                "shared": shared, "cached": task.cached,
            })
            job.remaining -= 1
            if job.remaining == 0:
                self.counters["jobs_completed"] += 1
                if _obs_runtime._enabled:
                    obs.inc("serve.jobs.completed")
                job.session.send({
                    "type": "done", "id": job.client_id,
                    "points": job.num_points,
                })
                job.session.finish_job(job)

    # -- lifecycle -----------------------------------------------------------

    async def drain(self) -> None:
        """Stop admissions and wait for every pending point to resolve."""
        self._draining = True
        await self._idle.wait()

    async def close(self) -> None:
        """Drain, then tear the worker tasks and thread pool down."""
        await self.drain()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._pool.shutdown(wait=True)

    # -- introspection -------------------------------------------------------

    def status(self) -> "dict[str, Any]":
        payload: "dict[str, Any]" = {
            "pending_points": self._pending,
            "running_points": self._running,
            "max_pending": self.max_pending,
            "pool_workers": self.pool_workers,
            "draining": self._draining,
            "counters": dict(self.counters),
            "inflight": self.inflight.stats().as_dict(),
        }
        if self.store is not None:
            payload["store"] = self.store.stats_payload()
        return payload
