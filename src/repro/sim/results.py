"""Result containers and plain-text table rendering for benches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class BerPoint:
    """One Monte-Carlo BER measurement."""

    parameter: float
    ber: float
    bits_total: int
    bit_errors: int
    extra: "dict[str, Any]" = field(default_factory=dict)

    def __str__(self) -> str:
        return f"param={self.parameter:g} BER={self.ber:.2e} ({self.bit_errors}/{self.bits_total})"


@dataclass
class SweepResult:
    """A labelled series of (parameter, value) pairs from a sweep."""

    label: str
    parameters: "list[float]"
    values: "list[float]"
    metadata: "dict[str, Any]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.parameters) != len(self.values):
            raise ValueError(
                f"parameters ({len(self.parameters)}) and values ({len(self.values)}) "
                "must have equal length"
            )

    def as_rows(self) -> "list[list[str]]":
        return [
            [f"{p:g}", f"{v:.4g}"] for p, v in zip(self.parameters, self.values)
        ]


def format_table(headers: "list[str]", rows: "list[list[str]]") -> str:
    """Render an aligned plain-text table (bench output format)."""
    if not headers:
        raise ValueError("headers must be non-empty")
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} does not match header count {len(headers)}")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render_row(cells: "list[str]") -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    separator = "  ".join("-" * width for width in widths)
    lines = [render_row(headers), separator]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)
