"""Service mode: a streaming job server over the executor + store.

Everything else in this repo is a one-shot batch entry point; this
package is the serving front door the ROADMAP's north star calls for.
``repro serve`` runs an asyncio TCP server speaking a newline-delimited
JSON protocol (:mod:`repro.serve.protocol`): clients submit simulation /
sweep / robustness jobs, a shared :class:`JobScheduler` admits them
through a bounded priority queue (deterministic reject-with-retry-after
on saturation), dedupes in-flight points by store fingerprint — two
clients asking for the same point share one computation — and streams
per-point results plus progress frames back incrementally.  Client
disconnects cancel their queued work; shutdown drains gracefully; the
PR-4 obs metrics registry and store health are exposed via the
``status`` / ``metrics`` frames.

The stack is crash-safe end to end.  Accepted jobs go into a durable
write-ahead journal (:mod:`repro.serve.journal`) in the cache dir, and
``repro serve --resume`` replays a crashed server's incomplete jobs —
already-stored points come back as cache hits, only missing points
recompute.  The scheduler quarantines poison points (per-point ``failed``
frames instead of dead jobs or pools) and abandons+rebuilds around
stalled workers under ``point_timeout_s``.
:meth:`repro.serve.client.ServeClient.run_resilient` survives the client
side: deterministic capped backoff (:class:`BackoffPolicy`) honoring
``retry_after_s``, reconnects, and partial-stream resume that requests
only the missing point indices.  :mod:`repro.serve.chaosproxy` injects
seed-deterministic network faults to prove all of it in CI.

The determinism contract carries through unchanged: every point is
computed by the same engine entry points the batch CLI calls, under the
same fingerprint, so streamed results reassembled by
:class:`repro.serve.client.ServeClient` are bit-identical to one-shot
runs (pinned by ``tests/integration/test_serve_end_to_end.py`` and the
CI serve smoke) — even when the stream was torn, dropped, or restarted
mid-job (pinned by ``tests/integration/test_serve_chaos.py`` and the CI
serve-chaos job).
"""

from repro.errors import ServeConnectionLost, ServeError
from repro.serve.chaosproxy import ChaosConfig, ChaosProxy, ChaosProxyThread
from repro.serve.client import BackoffPolicy, JobResult, ServeClient
from repro.serve.journal import JobJournal, JournalRecord
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    JobRejected,
    ParsedJob,
    decode_line,
    encode_message,
    parse_job,
    select_points,
)
from repro.serve.scheduler import JobScheduler
from repro.serve.server import JobServer, ServeConfig, ServerThread, run_server

__all__ = [
    "ServeError",
    "ServeConnectionLost",
    "JobRejected",
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "ParsedJob",
    "parse_job",
    "select_points",
    "encode_message",
    "decode_line",
    "JobScheduler",
    "JobServer",
    "ServeConfig",
    "ServerThread",
    "run_server",
    "ServeClient",
    "BackoffPolicy",
    "JobResult",
    "JobJournal",
    "JournalRecord",
    "ChaosConfig",
    "ChaosProxy",
    "ChaosProxyThread",
]
