"""Record / replay: persist captures and IF frames for offline analysis.

A hardware deployment of BiScatter would log the radar's IF samples and
the tag's ADC stream for offline debugging; this module gives the
simulator the same workflow.  Traces are plain ``.npz`` archives (no
pickling — safe to share), carrying enough metadata to rebuild the
framing:

* :func:`save_if_frame` / :func:`load_if_frame` — a radar frame's
  dechirped samples plus its chirp schedule.
* :func:`save_capture` / :func:`load_capture` — a tag ADC capture plus its
  (optional) frame schedule.

Round-trips are exact (complex128 / float64 preserved), so any analysis
run on a loaded trace matches the live run bit-for-bit.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.errors import SimulationError
from repro.radar.fmcw import IFFrame
from repro.tag.frontend import TagCapture
from repro.waveform.frame import FrameSchedule
from repro.waveform.parameters import ChirpParameters

_FORMAT_VERSION = 1


def _frame_arrays(frame: FrameSchedule) -> "dict[str, np.ndarray]":
    return {
        "slot_start_frequency_hz": np.array([s.chirp.start_frequency_hz for s in frame.slots]),
        "slot_bandwidth_hz": np.array([s.chirp.bandwidth_hz for s in frame.slots]),
        "slot_duration_s": np.array([s.chirp.duration_s for s in frame.slots]),
        "slot_amplitude": np.array([s.chirp.amplitude for s in frame.slots]),
        "slot_start_time_s": np.array([s.start_time_s for s in frame.slots]),
        "slot_period_s": np.array([s.period_s for s in frame.slots]),
        "slot_symbol": np.array(
            [-1 if s.symbol is None else s.symbol for s in frame.slots], dtype=np.int64
        ),
    }


def _frame_from_arrays(data) -> FrameSchedule:
    from repro.waveform.frame import ChirpSlot

    slots = []
    count = data["slot_duration_s"].size
    for index in range(count):
        chirp = ChirpParameters(
            start_frequency_hz=float(data["slot_start_frequency_hz"][index]),
            bandwidth_hz=float(data["slot_bandwidth_hz"][index]),
            duration_s=float(data["slot_duration_s"][index]),
            amplitude=float(data["slot_amplitude"][index]),
        )
        symbol = int(data["slot_symbol"][index])
        slots.append(
            ChirpSlot(
                chirp=chirp,
                start_time_s=float(data["slot_start_time_s"][index]),
                period_s=float(data["slot_period_s"][index]),
                symbol=None if symbol < 0 else symbol,
            )
        )
    return FrameSchedule(slots=tuple(slots))


def save_if_frame(path: "str | pathlib.Path", if_frame: IFFrame) -> None:
    """Persist an IF frame (per-chirp complex samples + schedule)."""
    arrays = _frame_arrays(if_frame.frame)
    arrays["format_version"] = np.array([_FORMAT_VERSION])
    arrays["kind"] = np.array(["if_frame"])
    arrays["sample_rate_hz"] = np.array([if_frame.sample_rate_hz])
    for index, samples in enumerate(if_frame.chirp_samples):
        arrays[f"chirp_{index:05d}"] = np.asarray(samples, dtype=np.complex128)
    arrays["num_chirps"] = np.array([if_frame.num_chirps])
    np.savez_compressed(path, **arrays)


def load_if_frame(path: "str | pathlib.Path") -> IFFrame:
    """Load an IF frame saved by :func:`save_if_frame`."""
    with np.load(path, allow_pickle=False) as data:
        _check_kind(data, "if_frame", path)
        frame = _frame_from_arrays(data)
        num_chirps = int(data["num_chirps"][0])
        samples = [np.array(data[f"chirp_{i:05d}"]) for i in range(num_chirps)]
        return IFFrame(
            frame=frame,
            sample_rate_hz=float(data["sample_rate_hz"][0]),
            chirp_samples=samples,
        )


def save_capture(path: "str | pathlib.Path", capture: TagCapture) -> None:
    """Persist a tag ADC capture (+ frame schedule when attached)."""
    arrays: "dict[str, np.ndarray]" = {
        "format_version": np.array([_FORMAT_VERSION]),
        "kind": np.array(["capture"]),
        "sample_rate_hz": np.array([capture.sample_rate_hz]),
        "samples": np.asarray(capture.samples, dtype=np.float64),
        "has_frame": np.array([capture.frame is not None]),
    }
    if capture.frame is not None:
        arrays.update(_frame_arrays(capture.frame))
    np.savez_compressed(path, **arrays)


def load_capture(path: "str | pathlib.Path") -> TagCapture:
    """Load a capture saved by :func:`save_capture`."""
    with np.load(path, allow_pickle=False) as data:
        _check_kind(data, "capture", path)
        frame = _frame_from_arrays(data) if bool(data["has_frame"][0]) else None
        return TagCapture(
            samples=np.array(data["samples"]),
            sample_rate_hz=float(data["sample_rate_hz"][0]),
            frame=frame,
        )


def _check_kind(data, expected: str, path: "str | pathlib.Path") -> None:
    if "kind" not in data or str(data["kind"][0]) != expected:
        raise SimulationError(
            f"trace file {path} does not contain a {expected!r} record"
        )
    version = int(data["format_version"][0])
    if version > _FORMAT_VERSION:
        raise SimulationError(
            f"trace file {path} has format v{version}, newer than this "
            f"library (v{_FORMAT_VERSION})"
        )
