"""Process-safe metrics: counters, gauges, fixed-bucket histograms.

Each *process* owns one registry (module-global, lock-guarded).  Worker
processes cannot share memory with the parent, so cross-process safety is
by **serialization, not sharing**: the executor snapshots a worker's
registry around each chunk (:func:`snapshot` / :func:`diff_snapshots`)
and ships the delta back alongside the chunk results, where the parent
folds it in with :func:`merge_into_registry`.  Counters and histogram
buckets add, so the merged totals are independent of chunk completion
order — aggregation is deterministic even though scheduling is not.

Histograms use **fixed bucket edges** (chosen at first observation,
identical in every process for a given metric) for the same reason: two
snapshots with the same edges merge bucket-by-bucket, with no
re-binning and no order sensitivity.  :data:`DEFAULT_SECONDS_BUCKETS`
suits wall-clock timings from sub-millisecond DSP up to minutes-long
chunks.

The mutation helpers (:func:`inc`, :func:`set_gauge`, :func:`observe`)
are no-ops while observability is disabled — one flag check, nothing
else — so instrumented hot paths cost nothing in the default
configuration.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any

from repro.obs import runtime

#: Edges (upper bounds, seconds) for duration histograms.  The last
#: implicit bucket is +inf.
DEFAULT_SECONDS_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


class Histogram:
    """Counts of observations against fixed, sorted upper-bound edges."""

    __slots__ = ("edges", "bucket_counts", "count", "total", "minimum", "maximum")

    def __init__(self, edges: "tuple[float, ...]" = DEFAULT_SECONDS_BUCKETS):
        edges = tuple(float(e) for e in edges)
        if not edges or list(edges) != sorted(edges):
            raise ValueError(f"histogram edges must be sorted and non-empty, got {edges}")
        self.edges = edges
        self.bucket_counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def as_dict(self) -> "dict[str, Any]":
        return {
            "edges": list(self.edges),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }


class MetricsRegistry:
    """One process's metrics; see the module docstring for the model."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: "dict[str, int | float]" = {}
        self._gauges: "dict[str, float]" = {}
        self._histograms: "dict[str, Histogram]" = {}

    def inc(self, name: str, amount: "int | float" = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(
        self, name: str, value: float, edges: "tuple[float, ...] | None" = None
    ) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram(edges or DEFAULT_SECONDS_BUCKETS)
                self._histograms[name] = histogram
            histogram.observe(value)

    def snapshot(self) -> "dict[str, Any]":
        """A plain, JSON-safe, key-sorted copy of everything recorded."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: self._histograms[name].as_dict()
                    for name in sorted(self._histograms)
                },
            }


_registry = MetricsRegistry()


def _reset() -> None:
    global _registry
    _registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """This process's registry (mainly for tests and the CLI printer)."""
    return _registry


def inc(name: str, amount: "int | float" = 1) -> None:
    """Add to a counter (no-op while disabled)."""
    if not runtime._enabled:
        return
    _registry.inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge to its latest value (no-op while disabled)."""
    if not runtime._enabled:
        return
    _registry.set_gauge(name, value)


def observe(name: str, value: float, edges: "tuple[float, ...] | None" = None) -> None:
    """Record one histogram observation (no-op while disabled)."""
    if not runtime._enabled:
        return
    _registry.observe(name, value, edges)


def snapshot() -> "dict[str, Any]":
    """Snapshot this process's registry (empty shells while disabled)."""
    return _registry.snapshot()


def empty_snapshot() -> "dict[str, Any]":
    return {"counters": {}, "gauges": {}, "histograms": {}}


def _check_histogram_dict(name: str, data: "dict[str, Any]") -> None:
    """Reject malformed histogram dicts before arithmetic touches them.

    ``zip`` over mismatched ``bucket_counts`` would silently truncate —
    corrupting totals without an error — so shape problems must fail
    loudly at the boundary where snapshots from other processes (or old
    on-disk payloads) enter.
    """
    edges = data.get("edges")
    counts = data.get("bucket_counts")
    if not edges:
        raise ValueError(f"histogram {name!r} snapshot has no edges")
    if list(edges) != sorted(float(e) for e in edges):
        raise ValueError(f"histogram {name!r} snapshot edges are not sorted")
    if counts is None or len(counts) != len(edges) + 1:
        raise ValueError(
            f"histogram {name!r} snapshot has {0 if counts is None else len(counts)}"
            f" bucket counts for {len(edges)} edges (want {len(edges) + 1})"
        )


def _copy_histogram_dict(data: "dict[str, Any]") -> "dict[str, Any]":
    return {
        "edges": list(data.get("edges", ())),
        "bucket_counts": list(data.get("bucket_counts", ())),
        "count": data.get("count", 0),
        "sum": data.get("sum", 0.0),
        "min": data.get("min"),
        "max": data.get("max"),
    }


def diff_snapshots(
    before: "dict[str, Any]", after: "dict[str, Any]"
) -> "dict[str, Any]":
    """What happened between two snapshots of the *same* registry.

    Counters and histogram buckets subtract exactly.  Gauges keep the
    ``after`` value (a gauge is a level, not a flow).  A histogram's
    min/max cannot be un-merged, so the delta keeps the ``after``
    extremes — a superset bound, documented as such.
    """
    delta = empty_snapshot()
    before_counters = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        changed = value - before_counters.get(name, 0)
        if changed:
            delta["counters"][name] = changed
    delta["gauges"] = dict(after.get("gauges", {}))
    before_histograms = before.get("histograms", {})
    for name, data in after.get("histograms", {}).items():
        _check_histogram_dict(name, data)
        previous = before_histograms.get(name)
        if previous is None:
            delta["histograms"][name] = _copy_histogram_dict(data)
            continue
        _check_histogram_dict(name, previous)
        if list(previous["edges"]) != list(data["edges"]):
            raise ValueError(f"histogram {name!r} changed edges between snapshots")
        changed_count = data.get("count", 0) - previous.get("count", 0)
        if not changed_count:
            continue
        delta["histograms"][name] = {
            "edges": list(data["edges"]),
            "bucket_counts": [
                now - then
                for now, then in zip(data["bucket_counts"], previous["bucket_counts"])
            ],
            "count": changed_count,
            "sum": data.get("sum", 0.0) - previous.get("sum", 0.0),
            "min": data.get("min"),
            "max": data.get("max"),
        }
    return delta


def merge_snapshots(
    base: "dict[str, Any]", extra: "dict[str, Any]"
) -> "dict[str, Any]":
    """Combine two snapshots from *different* registries into one.

    Counters and histograms add; gauges take the ``extra`` value.
    Merging is associative and commutative for counters/histograms, so
    any fold order over worker deltas yields the same totals.
    """
    merged = {
        "counters": dict(base.get("counters", {})),
        "gauges": dict(base.get("gauges", {})),
        "histograms": {},
    }
    for name, data in base.get("histograms", {}).items():
        _check_histogram_dict(name, data)
        merged["histograms"][name] = _copy_histogram_dict(data)
    for name, value in extra.get("counters", {}).items():
        merged["counters"][name] = merged["counters"].get(name, 0) + value
    merged["gauges"].update(extra.get("gauges", {}))
    for name, data in extra.get("histograms", {}).items():
        _check_histogram_dict(name, data)
        mine = merged["histograms"].get(name)
        if mine is None:
            merged["histograms"][name] = _copy_histogram_dict(data)
            continue
        if list(mine["edges"]) != list(data["edges"]):
            raise ValueError(f"histogram {name!r} has mismatched edges; cannot merge")
        mine["bucket_counts"] = [
            a + b for a, b in zip(mine["bucket_counts"], data["bucket_counts"])
        ]
        mine["count"] += data.get("count", 0)
        mine["sum"] += data.get("sum", 0.0)
        for key, pick in (("min", min), ("max", max)):
            values = [v for v in (mine[key], data.get(key)) if v is not None]
            mine[key] = pick(values) if values else None
    for section in ("counters", "gauges", "histograms"):
        merged[section] = dict(sorted(merged[section].items()))
    return merged


def merge_into_registry(delta: "dict[str, Any]") -> None:
    """Fold a worker's snapshot delta into this process's registry."""
    if delta is None:
        return
    for name, value in delta.get("counters", {}).items():
        _registry.inc(name, value)
    for name, value in delta.get("gauges", {}).items():
        _registry.set_gauge(name, value)
    for name, data in delta.get("histograms", {}).items():
        _check_histogram_dict(name, data)
        with _registry._lock:
            histogram = _registry._histograms.get(name)
            if histogram is None:
                histogram = Histogram(tuple(data["edges"]))
                _registry._histograms[name] = histogram
            if list(histogram.edges) != list(data["edges"]):
                raise ValueError(
                    f"histogram {name!r} has mismatched edges; cannot merge"
                )
            histogram.bucket_counts = [
                a + b for a, b in zip(histogram.bucket_counts, data["bucket_counts"])
            ]
            histogram.count += data.get("count", 0)
            histogram.total += data.get("sum", 0.0)
            minimum = data.get("min")
            maximum = data.get("max")
            if minimum is not None and minimum < histogram.minimum:
                histogram.minimum = minimum
            if maximum is not None and maximum > histogram.maximum:
                histogram.maximum = maximum
