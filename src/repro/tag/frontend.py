"""Tag decoder frontends: from incident radar chirps to ADC samples.

Two fidelity levels (see DESIGN.md Section 4):

* :class:`AnalyticTagFrontend` — emits the Eq.-9 beat tone directly at the
  tag ADC rate, with amplitude and noise from the downlink budget.  This is
  exact for the modelled chain (the square-law cross term of two delayed
  chirp copies IS a tone at ``alpha dT``) and is what the Monte-Carlo BER
  benches use.

* :class:`SampledTagFrontend` — runs the actual circuit chain on sampled
  waveforms: split -> two delay lines -> combine -> square-law detector ->
  RC low-pass -> ADC.  Sample rates force scaled-down bandwidths, so this
  level exists to *validate* the analytic model (ablation A1), not to run
  sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.channel.link_budget import DownlinkBudget
from repro.components.adc import ADC
from repro.components.delay_line import CoaxialDelayLine
from repro.components.envelope_detector import EnvelopeDetector
from repro.components.splitter import SplitterCombiner
from repro.errors import SimulationError
from repro.utils.rng import resolve_rng
from repro.utils.validation import ensure_positive
from repro.waveform.chirp import sample_chirp_baseband, sample_chirp_real
from repro.waveform.frame import FrameSchedule
from repro.waveform.parameters import ChirpParameters


@dataclass
class TagCapture:
    """ADC sample stream captured by the tag during one frame."""

    samples: np.ndarray
    sample_rate_hz: float
    frame: FrameSchedule | None = None

    @property
    def duration_s(self) -> float:
        return self.samples.size / self.sample_rate_hz

    def slot_samples(self, slot_index: int) -> np.ndarray:
        """Samples belonging to one frame slot (requires ``frame``)."""
        if self.frame is None:
            raise SimulationError("capture has no frame attached")
        slot = self.frame.slots[slot_index]
        start = int(round(slot.start_time_s * self.sample_rate_hz))
        stop = int(round(slot.end_time_s * self.sample_rate_hz))
        return self.samples[start:stop]


@dataclass
class AnalyticTagFrontend:
    """Eq.-9-exact frontend: beat tones at link-budget amplitudes.

    Parameters
    ----------
    budget:
        Downlink link budget (radar TX -> decoder video SNR).
    delta_t_s:
        The decoder's differential delay ``dT`` (from the tag's
        :class:`~repro.core.cssk.DecoderDesign`).
    include_dc:
        Model the square-law DC pedestal (``v = A (1 + cos ...)``); the
        decoder must reject it, so benches keep it on.
    """

    budget: DownlinkBudget
    delta_t_s: float
    include_dc: bool = True

    def __post_init__(self) -> None:
        ensure_positive("delta_t_s", self.delta_t_s)

    def capture(
        self,
        frame: FrameSchedule,
        distance_m: float,
        *,
        rng: int | np.random.Generator | None = None,
        absorptive_slots: np.ndarray | None = None,
        off_boresight_deg: float = 0.0,
        snr_override_db: float | None = None,
        wrap_fractions: np.ndarray | None = None,
    ) -> TagCapture:
        """Simulate the ADC stream the tag records across ``frame``.

        Parameters
        ----------
        distance_m:
            Radar-tag separation (sets the beat amplitude via the budget).
        absorptive_slots:
            Optional boolean array (per slot): True = decoder connected
            (absorptive mode), False = retro-reflecting, decoder sees
            nothing.  Default: always absorptive (downlink-only mode).
        snr_override_db:
            If given, scales the noise so the *video-band* SNR equals this
            value exactly — used by BER-vs-SNR benches that sweep SNR
            directly instead of distance.
        wrap_fractions:
            Optional per-slot sweep-wrap positions in (0, 1) for the
            CSS-style extension (:mod:`repro.core.css`): the radar wraps
            its sweep back to ``f0`` at that fraction of the chirp, which
            the decoder sees as the beat tone restarting its phase there.
            ``None`` or NaN entries mean no wrap (plain CSSK chirps).
        """
        ensure_positive("distance_m", distance_m)
        generator = resolve_rng(rng)
        fs = self.budget.adc.sample_rate_hz
        total_samples = int(round(frame.duration_s * fs))
        if total_samples < 2:
            raise SimulationError("frame too short for the tag ADC rate")
        amplitude = self.budget.video_beat_amplitude_v(
            distance_m, off_boresight_deg=off_boresight_deg
        )
        noise_rms = self.budget.video_noise_rms_v()
        if snr_override_db is not None:
            # video SNR = (amplitude^2 / 2) / noise^2  =>  rescale noise.
            target_linear = 10.0 ** (snr_override_db / 10.0)
            noise_rms = float(np.sqrt(amplitude**2 / 2.0 / target_linear))
        if absorptive_slots is not None:
            absorptive = np.asarray(absorptive_slots, dtype=bool)
            if absorptive.size != len(frame):
                raise SimulationError(
                    f"absorptive_slots has {absorptive.size} entries for a "
                    f"{len(frame)}-slot frame"
                )
        else:
            absorptive = np.ones(len(frame), dtype=bool)

        signal = np.zeros(total_samples)
        for slot_index, slot in enumerate(frame.slots):
            if not absorptive[slot_index]:
                continue
            start = int(round(slot.start_time_s * fs))
            stop = min(int(round((slot.start_time_s + slot.chirp.duration_s) * fs)), total_samples)
            if stop <= start:
                continue
            n = stop - start
            t = np.arange(n) / fs
            beat_hz = slot.chirp.slope_hz_per_s * self.delta_t_s
            phase0 = generator.uniform(0.0, 2.0 * np.pi)
            rolloff = self.budget.detector.video_gain_at(beat_hz)
            wrap = (
                float(wrap_fractions[slot_index])
                if wrap_fractions is not None
                else float("nan")
            )
            if np.isfinite(wrap) and 0.0 < wrap < 1.0:
                # Sweep wrap at fraction `wrap`: the beat tone restarts its
                # phase there (see repro.core.css for the derivation).
                wrap_time = wrap * slot.chirp.duration_s
                shifted = np.where(t < wrap_time, t, t - wrap_time)
                tone = rolloff * np.cos(2.0 * np.pi * beat_hz * shifted + phase0)
            else:
                tone = rolloff * np.cos(2.0 * np.pi * beat_hz * t + phase0)
            if self.include_dc:
                signal[start:stop] = amplitude * (1.0 + tone)
            else:
                signal[start:stop] = amplitude * tone

        noisy = signal + generator.normal(0.0, noise_rms, total_samples)
        sampled = self.budget.adc.quantize(noisy) if _adc_in_range(self.budget.adc, noisy) else noisy
        return TagCapture(samples=sampled, sample_rate_hz=fs, frame=frame)

    def capture_batch(
        self,
        frames: "Sequence[FrameSchedule]",
        distance_m: float,
        *,
        rngs: "Sequence[int | np.random.Generator | None]",
        absorptive_slots: np.ndarray | None = None,
        off_boresight_deg: float = 0.0,
        snr_override_db: float | None = None,
        wrap_fractions: np.ndarray | None = None,
    ) -> "list[TagCapture]":
        """Batched :meth:`capture`: one vectorized pass over many frames.

        Bit-exact oracle contract: ``capture_batch(frames, d, rngs=gens)``
        returns captures whose samples equal, bitwise, the sequential
        ``[capture(f, d, rng=g) for f, g in zip(frames, gens)]`` — each
        frame consumes its generator in the identical draw order (one
        uniform phase per active slot in slot order, then the noise
        vector).  The heavy math (tone synthesis, noise add, conditional
        quantization) runs as a handful of ``(batch, n_samples)`` array
        ops instead of a per-slot Python loop.

        Constraints (``SimulationError`` otherwise): the batch is
        non-empty, every frame has the same slot count, the same slot
        start times, and the same total duration — i.e. frames share one
        slot grid, only chirp *durations* may differ per frame (the CSSK
        case).  ``absorptive_slots`` / ``wrap_fractions`` are per-slot
        arrays applied to every frame in the batch.

        Returned captures are rows of one shared ``(batch, n)`` buffer;
        treat their samples as read-only.
        """
        ensure_positive("distance_m", distance_m)
        bank = _batch_slot_bank(frames)
        if len(rngs) != len(frames):
            raise SimulationError(
                f"capture_batch got {len(rngs)} generators for {len(frames)} frames"
            )
        generators = [resolve_rng(rng) for rng in rngs]
        fs = self.budget.adc.sample_rate_hz
        total_samples = int(round(bank.duration_s * fs))
        if total_samples < 2:
            raise SimulationError("frame too short for the tag ADC rate")
        if absorptive_slots is not None:
            absorptive = np.asarray(absorptive_slots, dtype=bool)
            if absorptive.size != bank.num_slots:
                raise SimulationError(
                    f"absorptive_slots has {absorptive.size} entries for a "
                    f"{bank.num_slots}-slot frame"
                )
        else:
            absorptive = np.ones(bank.num_slots, dtype=bool)
        samples = _synthesize_batch(
            self,
            fs=fs,
            total_samples=total_samples,
            distance_m=distance_m,
            generators=generators,
            start_samples=np.round(bank.start_times_s * fs).astype(int),
            start_times_s=bank.start_times_s,
            durations_s=bank.durations_s,
            slopes_hz_per_s=bank.slopes_hz_per_s,
            absorptive=absorptive,
            off_boresight_deg=off_boresight_deg,
            snr_override_db=snr_override_db,
            wrap_fractions=wrap_fractions,
        )
        return [
            TagCapture(samples=samples[index], sample_rate_hz=fs, frame=frame)
            for index, frame in enumerate(frames)
        ]


@dataclass(frozen=True)
class _SlotBank:
    """Uniform slot grid shared by a frame batch (durations vary per frame)."""

    start_times_s: np.ndarray  # (num_slots,)
    durations_s: np.ndarray  # (batch, num_slots)
    slopes_hz_per_s: np.ndarray  # (batch, num_slots)
    duration_s: float

    @property
    def num_slots(self) -> int:
        return self.start_times_s.size


def _batch_slot_bank(frames: "Sequence[FrameSchedule]") -> _SlotBank:
    """Validate a frame batch and extract its shared slot geometry.

    Raises :class:`SimulationError` for an empty batch and for *ragged*
    batches — frames disagreeing on slot count, slot start times, or total
    duration cannot share one ``(batch, n_samples)`` layout.
    """
    if len(frames) == 0:
        raise SimulationError("capture_batch requires a non-empty frame batch")
    num_slots = len(frames[0])
    starts = np.array([slot.start_time_s for slot in frames[0].slots])
    duration = frames[0].duration_s
    for index, frame in enumerate(frames):
        if len(frame) != num_slots:
            raise SimulationError(
                f"ragged frame batch: frame {index} has {len(frame)} slots, "
                f"frame 0 has {num_slots}"
            )
        frame_starts = np.array([slot.start_time_s for slot in frame.slots])
        if not np.array_equal(frame_starts, starts):
            raise SimulationError(
                f"ragged frame batch: frame {index} has different slot start times"
            )
        if frame.duration_s != duration:
            raise SimulationError(
                f"ragged frame batch: frame {index} lasts {frame.duration_s}s, "
                f"frame 0 lasts {duration}s"
            )
    durations = np.array(
        [[slot.chirp.duration_s for slot in frame.slots] for frame in frames]
    )
    slopes = np.array(
        [[slot.chirp.slope_hz_per_s for slot in frame.slots] for frame in frames]
    )
    return _SlotBank(
        start_times_s=starts,
        durations_s=durations,
        slopes_hz_per_s=slopes,
        duration_s=duration,
    )


def _synthesize_batch(
    frontend: "AnalyticTagFrontend",
    *,
    fs: float,
    total_samples: int,
    distance_m: float,
    generators: "list[np.random.Generator]",
    start_samples: np.ndarray,
    start_times_s: np.ndarray,
    durations_s: np.ndarray,
    slopes_hz_per_s: np.ndarray,
    absorptive: np.ndarray,
    off_boresight_deg: float,
    snr_override_db: float | None,
    wrap_fractions: np.ndarray | None,
) -> np.ndarray:
    """The vectorized core shared by :meth:`AnalyticTagFrontend.capture_batch`
    and the engine's layout-based fast path.

    Replicates :meth:`AnalyticTagFrontend.capture` bit-for-bit: identical
    per-frame RNG draw order (per-active-slot uniform phases in slot order,
    then one noise vector), identical sample-index rounding, identical
    elementwise arithmetic — only restructured so the tone synthesis and
    noise add run over a ``(batch, n_samples)`` block.  Returns that block.
    """
    batch = len(generators)
    amplitude = frontend.budget.video_beat_amplitude_v(
        distance_m, off_boresight_deg=off_boresight_deg
    )
    noise_rms = frontend.budget.video_noise_rms_v()
    if snr_override_db is not None:
        # video SNR = (amplitude^2 / 2) / noise^2  =>  rescale noise.
        target_linear = 10.0 ** (snr_override_db / 10.0)
        noise_rms = float(np.sqrt(amplitude**2 / 2.0 / target_linear))

    # Stop indices exactly as the per-frame oracle rounds them:
    # round((start_time + duration) * fs), clamped to the capture length.
    stop_samples = np.minimum(
        np.round((start_times_s[None, :] + durations_s) * fs).astype(int),
        total_samples,
    )
    active = absorptive[None, :] & (stop_samples > start_samples[None, :])

    # Per-frame phase draws, in slot order — uniform(size=k) draws the same
    # bit pattern as k sequential scalar draws, so batching them per frame
    # preserves the oracle's RNG stream exactly.
    phases = np.zeros((batch, active.shape[1]))
    for row, generator in enumerate(generators):
        count = int(np.count_nonzero(active[row]))
        if count:
            phases[row, active[row]] = generator.uniform(0.0, 2.0 * np.pi, count)

    beats = slopes_hz_per_s * frontend.delta_t_s
    unique_beats, inverse = np.unique(beats, return_inverse=True)
    gains = np.array(
        [frontend.budget.detector.video_gain_at(float(b)) for b in unique_beats]
    )
    rolloffs = gains[inverse].reshape(beats.shape)

    max_on = int((stop_samples - start_samples[None, :]).max(initial=0))
    time_base = np.arange(max(max_on, 0)) / fs
    sample_index = np.arange(max(max_on, 0))
    signal = np.zeros((batch, total_samples))
    for slot in range(active.shape[1]):
        rows = np.flatnonzero(active[:, slot])
        if rows.size == 0:
            continue
        full_batch = rows.size == batch
        start = int(start_samples[slot])
        lengths = stop_samples[rows, slot] - start
        n_max = int(lengths.max())
        t = time_base[:n_max]
        # Basic slices when every frame is active (the common engine path)
        # avoid the fancy-index copies; values are read-identical.
        take = slice(None) if full_batch else rows
        beat = beats[take, slot][:, None]
        phase = phases[take, slot][:, None]
        rolloff = rolloffs[take, slot][:, None]
        wrap = (
            float(wrap_fractions[slot]) if wrap_fractions is not None else float("nan")
        )
        # The fused in-place chain below performs the oracle's exact
        # elementwise operation sequence — cos(2*pi*beat*t + phase), then
        # *rolloff, then (1 +), then *amplitude — without the per-step
        # temporaries, so every written value is bit-identical.
        if np.isfinite(wrap) and 0.0 < wrap < 1.0:
            wrap_time = wrap * durations_s[take, slot][:, None]
            shifted = np.where(t < wrap_time, t, t - wrap_time)
            angle = (2.0 * np.pi * beat) * shifted
        else:
            angle = (2.0 * np.pi * beat) * t
        angle += phase
        values = np.cos(angle, out=angle)
        values *= rolloff
        if frontend.include_dc:
            values += 1.0
        values *= amplitude
        if full_batch:
            # Rows shorter than the block keep their zero tail (the oracle
            # never writes past each slot's own stop index).
            if int(lengths.min()) == n_max:
                signal[:, start : start + n_max] = values
            else:
                mask = sample_index[:n_max][None, :] < lengths[:, None]
                signal[:, start : start + n_max] = np.where(mask, values, 0.0)
        else:
            mask = sample_index[:n_max][None, :] < lengths[:, None]
            signal[rows, start : start + n_max] = np.where(mask, values, 0.0)

    for row, generator in enumerate(generators):
        signal[row] += generator.normal(0.0, noise_rms, total_samples)

    # Conditional quantization per frame, as _adc_in_range decides per
    # capture; quantize_uniform is elementwise, so quantizing the selected
    # rows as a block is bit-identical to per-row calls.
    adc = frontend.budget.adc
    peaks = np.max(np.abs(signal), axis=1)
    hot = peaks > 10.0 * adc.lsb_v
    if np.any(hot):
        signal[hot] = adc.quantize(signal[hot])
    return signal


def _adc_in_range(adc: ADC, signal: np.ndarray) -> bool:
    """Quantize only when the signal is within ~the ADC range.

    The budget's default 1 V full scale is far above the uV-level video
    signals; quantizing there would floor everything to +/- LSB/2 noise,
    which real systems avoid with a video amplifier.  We model that
    amplifier implicitly: when the signal is tiny relative to full scale we
    skip quantization (the amplifier would rescale into range).
    """
    peak = float(np.max(np.abs(signal))) if signal.size else 0.0
    return peak > 10.0 * adc.lsb_v


@dataclass
class SampledTagFrontend:
    """Circuit-level frontend on sampled waveforms (validation fidelity).

    Parameters
    ----------
    splitter / combiner / detector / adc:
        The physical chain components.
    line_short / line_long:
        The two delay lines; their delay difference sets the beat.
    baseband_sample_rate_hz:
        Simulation rate for the RF waveform; must exceed the chirp
        bandwidth (complex representation).
    """

    line_short: CoaxialDelayLine
    line_long: CoaxialDelayLine
    splitter: SplitterCombiner = field(default_factory=SplitterCombiner)
    combiner: SplitterCombiner = field(default_factory=SplitterCombiner)
    detector: EnvelopeDetector = field(default_factory=EnvelopeDetector)
    adc: ADC = field(default_factory=lambda: ADC(sample_rate_hz=2e6))
    baseband_sample_rate_hz: float = 50e6

    def __post_init__(self) -> None:
        ensure_positive("baseband_sample_rate_hz", self.baseband_sample_rate_hz)
        if self.line_long.group_delay_s() <= self.line_short.group_delay_s():
            raise SimulationError("line_long must have a larger delay than line_short")

    @property
    def delta_t_s(self) -> float:
        """Differential delay of the two lines."""
        return self.line_long.group_delay_s() - self.line_short.group_delay_s()

    def expected_beat_hz(self, chirp: ChirpParameters) -> float:
        """Eq. 11 prediction for this chain."""
        return chirp.slope_hz_per_s * self.delta_t_s

    def capture_chirp(
        self,
        chirp: ChirpParameters,
        *,
        input_amplitude_v: float = 1.0,
        rng: int | np.random.Generator | None = None,
        use_real_passband: bool = False,
    ) -> TagCapture:
        """Run one chirp through the full circuit chain.

        Parameters
        ----------
        input_amplitude_v:
            Chirp amplitude at the decoder input (post-antenna/switch).
        use_real_passband:
            Sample the real passband waveform instead of the complex
            envelope — only feasible when ``f0 + B`` is far below the
            baseband sample rate (scaled-down configurations).
        """
        if self.baseband_sample_rate_hz < 1.2 * chirp.bandwidth_hz:
            raise SimulationError(
                f"baseband rate {self.baseband_sample_rate_hz}Hz cannot represent a "
                f"{chirp.bandwidth_hz}Hz chirp"
            )
        scaled = chirp.with_amplitude(input_amplitude_v)
        fs = self.baseband_sample_rate_hz
        delay_short = self.line_short.group_delay_s()
        delay_long = self.line_long.group_delay_s()
        freq_mid = chirp.center_frequency_hz
        loss_short = self.line_short.insertion_loss_db(freq_mid)
        loss_long = self.line_long.insertion_loss_db(freq_mid)

        if use_real_passband:
            if fs < 2.5 * chirp.end_frequency_hz:
                raise SimulationError(
                    f"baseband rate {fs}Hz cannot Nyquist-sample a passband up to "
                    f"{chirp.end_frequency_hz}Hz"
                )
            branch_short = sample_chirp_real(scaled, fs, delay_s=delay_short)
            branch_long = sample_chirp_real(scaled, fs, delay_s=delay_long)
        else:
            branch_short = sample_chirp_baseband(scaled, fs, delay_s=delay_short)
            branch_long = sample_chirp_baseband(scaled, fs, delay_s=delay_long)

        split_a, split_b = self.splitter.split(branch_short)
        _, split_long = self.splitter.split(branch_long)
        # Each branch is the *same physical split*, routed through its line:
        # apply per-line loss to the respective branch.
        from repro.components.base import apply_loss

        routed_short = apply_loss(split_a, loss_short)
        routed_long = apply_loss(split_long, loss_long)
        combined = self.combiner.combine(routed_short, routed_long)

        if use_real_passband:
            video = self.detector.detect_real(np.real(combined), fs)
        else:
            video = self.detector.detect(combined, fs)
        noise_rms = self.detector.output_noise_rms_v()
        if noise_rms > 0:
            video = video + resolve_rng(rng).normal(0.0, noise_rms, video.size)
        samples = self.adc.sample(video, fs, rng=rng)
        return TagCapture(samples=samples, sample_rate_hz=self.adc.sample_rate_hz)
