"""Small argument-validation helpers.

These raise :class:`repro.errors.ConfigurationError` so that bad parameters
surface as domain errors with the offending name and value in the message.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def ensure_positive(name: str, value: float) -> float:
    """Validate that ``value`` is a finite number > 0 and return it."""
    ensure_finite(name, value)
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")
    return float(value)


def ensure_finite(name: str, value: float) -> float:
    """Validate that ``value`` is a finite real number and return it."""
    try:
        numeric = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a real number, got {value!r}") from exc
    if not math.isfinite(numeric):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
    return numeric


def ensure_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Validate that ``value`` lies in the given interval and return it."""
    numeric = ensure_finite(name, value)
    below = numeric < low if low_inclusive else numeric <= low
    above = numeric > high if high_inclusive else numeric >= high
    if below or above:
        lo_b = "[" if low_inclusive else "("
        hi_b = "]" if high_inclusive else ")"
        raise ConfigurationError(f"{name} must be in {lo_b}{low}, {high}{hi_b}, got {value!r}")
    return numeric


def ensure_probability(name: str, value: float) -> float:
    """Validate that ``value`` is a probability in [0, 1] and return it."""
    return ensure_in_range(name, value, 0.0, 1.0)
