"""Millimetro baseline (reference [44]): localization-only retro tags.

Millimetro tags toggle a Van Atta array at a fixed per-tag rate purely as
an identification/localization beacon — no data in either direction.  The
radar side uses the same range-Doppler + signature matched filter as
BiScatter (BiScatter builds on Millimetro's processing), but always with
fixed-slope frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import SystemCapabilities
from repro.channel.multipath import Clutter
from repro.components.van_atta import VanAttaArray
from repro.core.localization import LocalizationResult, TagLocalizer
from repro.radar.config import RadarConfig
from repro.radar.fmcw import FMCWRadar, Scatterer
from repro.tag.modulator import UplinkModulator
from repro.utils.rng import resolve_rng
from repro.utils.validation import ensure_positive
from repro.waveform.frame import FrameSchedule


@dataclass
class MillimetroSystem:
    """A Millimetro-style localization network: radar + beacon tag.

    Parameters
    ----------
    radar_config:
        Any commercial FMCW radar.
    beacon_rate_hz:
        The tag's fixed switching rate (its identity).
    chirp_period_s / chirp_duration_s:
        The fixed-slope sensing frame timing.
    """

    radar_config: RadarConfig
    beacon_rate_hz: float = 2000.0
    chirp_period_s: float = 120e-6
    chirp_duration_s: float = 80e-6
    van_atta: VanAttaArray = field(default_factory=VanAttaArray)

    def __post_init__(self) -> None:
        ensure_positive("beacon_rate_hz", self.beacon_rate_hz)

    @staticmethod
    def capabilities() -> SystemCapabilities:
        """Table 1 row."""
        return SystemCapabilities(
            name="Millimetro",
            uplink_comm=False,
            downlink_comm=False,
            tag_localization=True,
            integrated_sensing_and_comms=False,
            commercial_radar_compatible=True,
        )

    def sensing_frame(self, num_chirps: int) -> FrameSchedule:
        """Fixed-slope frame (Millimetro never varies slopes)."""
        chirp = self.radar_config.chirp(self.chirp_duration_s)
        return FrameSchedule.from_chirps([chirp] * num_chirps, self.chirp_period_s)

    def localize_tag(
        self,
        tag_range_m: float,
        *,
        num_chirps: int = 128,
        clutter: Clutter | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> LocalizationResult:
        """End-to-end localization of one beacon tag."""
        ensure_positive("tag_range_m", tag_range_m)
        generator = resolve_rng(rng)
        frame = self.sensing_frame(num_chirps)
        modulator = UplinkModulator(
            modulation_rate_hz=self.beacon_rate_hz,
            chirp_period_s=self.chirp_period_s,
            chirps_per_bit=max(num_chirps, 4),
        )
        times = np.array([slot.start_time_s for slot in frame.slots])
        states = modulator.beacon_states(times)
        frequency = self.radar_config.center_frequency_hz
        reflective_rcs = self.van_atta.rcs_m2(frequency)
        on_off = self.van_atta.modulated_rcs_amplitudes(frequency)
        off_factor = float(np.sqrt(on_off[1] / on_off[0]))
        schedule = np.where(states, 1.0, off_factor)
        scatterers = [
            Scatterer(range_m=tag_range_m, rcs_m2=reflective_rcs, amplitude_schedule=schedule)
        ]
        env = clutter or Clutter()
        scatterers += [
            Scatterer(range_m=r.range_m, rcs_m2=r.rcs_m2, angle_deg=r.angle_deg)
            for r in env.reflectors
        ]
        radar = FMCWRadar(self.radar_config)
        if_frame = radar.receive_frame(frame, scatterers, rng=generator)
        localizer = TagLocalizer(self.beacon_rate_hz)
        return localizer.localize(if_frame)
