#!/usr/bin/env python3
"""Serve client example: submit a streaming job and print CLI-identical output.

Connects to a running ``repro serve`` instance, submits one job over the
NDJSON line protocol, and prints each streamed point in *exactly* the
format the one-shot batch CLI prints — for a ``ber``/``ber_sweep`` job,
the two lines ``repro ber`` would emit for the same knobs.  The CI serve
smoke relies on that: it diffs this script's output bit-for-bit against
per-point ``repro ber`` invocations.

Run a server first, then:

    python -m repro.cli serve --port 7531 --pool-workers 2 &
    python examples/serve_client.py --port 7531 \\
        --field symbol_bits --values 3,4,5 --frames 40 --distance 4

``--shutdown`` asks the server to drain and stop after the job, which is
how the smoke tears the background server down gracefully.
"""

import argparse
import sys

from repro.serve.client import BackoffPolicy, ServeClient


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=None,
        help="port of a running `repro serve` (omit to run a private "
        "in-process server for the duration of the job)",
    )
    parser.add_argument("--distance", type=float, default=3.0)
    parser.add_argument("--symbol-bits", type=int, default=5)
    parser.add_argument("--frames", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--field", default=None,
        choices=["distance_m", "snr_db", "symbol_bits", "bandwidth_ghz",
                 "frames", "seed"],
        help="sweep this job field over --values (omit for a single point)",
    )
    parser.add_argument(
        "--values", default=None,
        help="comma-separated sweep values for --field",
    )
    parser.add_argument(
        "--priority", type=int, default=0,
        help="scheduler priority (lower runs first; default 0)",
    )
    parser.add_argument(
        "--shutdown", action="store_true",
        help="ask the server to drain and stop after the job completes",
    )
    parser.add_argument(
        "--max-retries", type=int, default=8,
        help="consecutive backoff steps before giving up on rejections "
        "and dropped connections (default 8)",
    )
    parser.add_argument(
        "--backoff-base", type=float, default=0.25, metavar="SECONDS",
        help="first backoff delay; doubles per step up to --backoff-cap "
        "(default 0.25)",
    )
    parser.add_argument(
        "--backoff-cap", type=float, default=30.0, metavar="SECONDS",
        help="backoff delay ceiling (default 30)",
    )
    parser.add_argument(
        "--backoff-seed", type=int, default=0,
        help="jitter seed; the retry schedule is a pure function of it",
    )
    return parser


def build_job(args) -> dict:
    job = {
        "kind": "ber",
        "distance_m": args.distance,
        "symbol_bits": args.symbol_bits,
        "frames": args.frames,
        "seed": args.seed,
    }
    if args.field is not None:
        if args.values is None:
            raise SystemExit("--field requires --values")
        values = [float(v) for v in args.values.split(",") if v]
        job["kind"] = "ber_sweep"
        job["sweep"] = {"field": args.field, "values": values}
        job.pop(
            {"distance_m": "distance_m", "symbol_bits": "symbol_bits",
             "frames": "frames", "seed": "seed"}.get(args.field, ""),
            None,
        )
    return job


def run_job(args, host, port) -> int:
    job = build_job(args)
    policy = BackoffPolicy(
        base_s=args.backoff_base,
        cap_s=args.backoff_cap,
        max_attempts=args.max_retries,
        seed=args.backoff_seed,
    )

    def on_wait(attempt: int, delay_s: float, reason: str) -> None:
        # Retry telemetry goes to stderr: stdout is diffed byte-for-byte
        # against clean runs by the CI smokes and must stay result-only.
        print(
            f"retry {attempt + 1}/{policy.max_attempts} in {delay_s:.3f}s "
            f"({reason}); schedule: "
            + ", ".join(f"{d:.3f}s" for d in policy.schedule()),
            file=sys.stderr,
        )

    with ServeClient(host, port) as client:
        # run_resilient waits out `rejected.retry_after_s` backpressure
        # hints and survives dropped connections / server restarts by
        # reconnecting and requesting only the missing points.
        result = client.run_resilient(
            job, priority=args.priority, policy=policy, on_wait=on_wait,
        )
        sweep_values = (
            job["sweep"]["values"] if "sweep" in job else [None]
        )
        for point, value in zip(result.ber_points(), sweep_values):
            distance = (
                value if args.field == "distance_m" else args.distance
            )
            # Byte-identical to the repro ber output lines.
            print(f"BER: {point.ber:.3e} "
                  f"({point.bit_errors}/{point.bits_total} bits)")
            print(f"video SNR at {distance} m: "
                  f"{point.extra['video_snr_db']:.1f} dB")
        if args.shutdown:
            client.shutdown_server()
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.port is not None:
        return run_job(args, args.host, args.port)
    # No server given: stand one up in-process (self-contained demo /
    # `make examples`).  Streamed results are bit-identical either way.
    from repro.serve.server import ServeConfig, ServerThread

    with ServerThread(ServeConfig(pool_workers=2)) as handle:
        return run_job(args, handle.host, handle.port)


if __name__ == "__main__":
    sys.exit(main())
