"""Unit conversions: dB/linear, dBm/watts, wavelengths, inches."""

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.utils.units import (
    db_to_power_ratio,
    db_to_voltage_ratio,
    dbm_to_watts,
    inches_to_meters,
    power_ratio_to_db,
    voltage_ratio_to_db,
    watts_to_dbm,
    wavelength,
)


class TestPowerDb:
    def test_zero_db_is_unity(self):
        assert db_to_power_ratio(0.0) == 1.0

    def test_ten_db_is_ten(self):
        assert db_to_power_ratio(10.0) == pytest.approx(10.0)

    def test_negative_db(self):
        assert db_to_power_ratio(-3.0103) == pytest.approx(0.5, rel=1e-4)

    def test_roundtrip(self):
        for db in [-20.0, -3.0, 0.0, 7.5, 40.0]:
            assert power_ratio_to_db(db_to_power_ratio(db)) == pytest.approx(db)

    def test_array_input(self):
        arr = np.array([1.0, 10.0, 100.0])
        np.testing.assert_allclose(power_ratio_to_db(arr), [0.0, 10.0, 20.0])

    def test_rejects_nonpositive_ratio(self):
        with pytest.raises(ValueError):
            power_ratio_to_db(0.0)
        with pytest.raises(ValueError):
            power_ratio_to_db(-1.0)


class TestVoltageDb:
    def test_twenty_db_is_ten_x(self):
        assert db_to_voltage_ratio(20.0) == pytest.approx(10.0)

    def test_roundtrip(self):
        assert voltage_ratio_to_db(db_to_voltage_ratio(13.0)) == pytest.approx(13.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            voltage_ratio_to_db(0.0)


class TestDbm:
    def test_zero_dbm_is_one_mw(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_roundtrip(self):
        for dbm in [-90.0, -30.0, 0.0, 7.0, 20.0]:
            assert watts_to_dbm(dbm_to_watts(dbm)) == pytest.approx(dbm)

    def test_rejects_nonpositive_watts(self):
        with pytest.raises(ValueError):
            watts_to_dbm(0.0)


class TestWavelength:
    def test_9ghz(self):
        assert wavelength(9e9) == pytest.approx(SPEED_OF_LIGHT / 9e9)

    def test_24ghz_smaller_than_9ghz(self):
        assert wavelength(24e9) < wavelength(9e9)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            wavelength(0.0)


class TestInches:
    def test_one_inch(self):
        assert inches_to_meters(1.0) == pytest.approx(0.0254)

    def test_paper_delay_line(self):
        # The paper's 45-inch line difference is about 1.14 m.
        assert inches_to_meters(45.0) == pytest.approx(1.143, rel=1e-3)
