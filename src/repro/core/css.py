"""CSS-style downlink extension: wrap-position keying on top of CSSK.

Section 6 of the paper points at "more complex downlink modulations based
on chirp-spread-spectrum (CSS)" as the route past CSSK's logarithmic
data-rate scaling.  This module implements that direction with a waveform
a commercial chirp generator can still produce: a **cyclically wrapped
sweep** (LoRa-style).  Instead of sweeping ``f0 -> f0 + B`` once, the radar
wraps back to ``f0`` at a data-dependent fraction ``p`` of the chirp and
finishes the sweep, so the chirp still occupies exactly bandwidth B and
duration T (sensing-compatible) while hiding ``log2(N_positions)`` extra
bits in ``p``.

What the tag's differential decoder sees (derivation): the beat phase of
Eq. 9 is ``theta(t) = 2 pi (f_inst(t) dT - (alpha/2) dT^2)`` with
``f_inst`` the instantaneous sweep frequency.  The wrap drops ``f_inst`` by
``alpha p T`` instantly, so the beat tone keeps frequency
``df = alpha dT`` but *restarts its phase* at ``t = p T``.  Locating that
phase-restart with a joint GLRT adds the position bits with no new tag
hardware — the same kHz ADC samples suffice.

Symbols are (slope, position) pairs: ``bits = cssk_bits + position_bits``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cssk import CsskAlphabet, gray_code, gray_decode
from repro.errors import AlphabetError, ConfigurationError
from repro.tag.frontend import TagCapture


@dataclass(frozen=True)
class CssAlphabet:
    """A CSSK alphabet augmented with wrap-position keying.

    Parameters
    ----------
    cssk:
        The base slope alphabet (slopes still carry their Gray-coded bits).
    position_bits:
        Bits per chirp carried by the wrap position; positions are placed
        uniformly inside (margin, 1 - margin) of the chirp duration.
    position_margin:
        Fraction of the chirp kept wrap-free at both ends so every
        hypothesis has enough samples on each side of the restart.
    """

    cssk: CsskAlphabet
    position_bits: int = 2
    position_margin: float = 0.15

    def __post_init__(self) -> None:
        if self.position_bits < 1:
            raise AlphabetError(f"position_bits must be >= 1, got {self.position_bits}")
        if not 0.0 < self.position_margin < 0.5:
            raise AlphabetError(
                f"position_margin must be in (0, 0.5), got {self.position_margin}"
            )
        # The shortest chirp must give every position segment >= 8 ADC-ish
        # samples of separation; enforced at decode time per sample rate,
        # here just sanity-check the count fits the span.
        if self.num_positions > 64:
            raise AlphabetError("more than 64 wrap positions is not practical")

    @property
    def num_positions(self) -> int:
        return 2**self.position_bits

    @property
    def bits_per_symbol(self) -> int:
        """Total downlink bits per chirp."""
        return self.cssk.symbol_bits + self.position_bits

    def data_rate_bps(self) -> float:
        """Eq. 14 with the position bits included."""
        return self.bits_per_symbol / self.cssk.chirp_period_s

    def wrap_fractions(self) -> np.ndarray:
        """The candidate wrap positions (fractions of the chirp duration)."""
        return np.linspace(
            self.position_margin, 1.0 - self.position_margin, self.num_positions
        )

    # ---- bits <-> (slope, position) ------------------------------------------

    def encode_bits(self, bits: np.ndarray) -> tuple[int, int]:
        """One symbol's bits -> (slope symbol, position index)."""
        data = np.asarray(bits, dtype=int)
        if data.size != self.bits_per_symbol:
            raise AlphabetError(
                f"expected {self.bits_per_symbol} bits, got {data.size}"
            )
        slope_symbol = self.cssk.symbol_for_bits(data[: self.cssk.symbol_bits])
        code = 0
        for bit in data[self.cssk.symbol_bits :]:
            code = (code << 1) | int(bit)
        return slope_symbol, gray_decode(code)

    def decode_symbol(self, slope_symbol: int, position_index: int) -> np.ndarray:
        """(slope symbol, position index) -> the carried bits."""
        if not 0 <= position_index < self.num_positions:
            raise AlphabetError(
                f"position index {position_index} out of range [0, {self.num_positions})"
            )
        slope_bits = self.cssk.bits_for_symbol(slope_symbol)
        code = gray_code(position_index)
        position_bits = np.array(
            [(code >> s) & 1 for s in range(self.position_bits - 1, -1, -1)],
            dtype=np.uint8,
        )
        return np.concatenate([slope_bits, position_bits])


class CssDecoder:
    """Joint (slope, wrap-position) GLRT demodulator for the tag.

    For each (slope, position) hypothesis the signal model over the slot is
    a gated DC pedestal plus a *coherent* wrapped tone — the post-wrap
    segment's phase is locked to the pre-wrap segment by the known restart
    relation (the tone is ``cos(w * tau(t))`` with
    ``tau = t - pT * 1[t >= pT]``).  The basis
    ``{const, ramp | rect, cos(w tau), sin(w tau)}`` is QR-orthonormalized
    with the two baseline (nuisance) directions dropped from the score, so
    explained energy beyond any offset/drift is the decision statistic;
    the hypothesis is discriminated both
    by the boundary location and by the known phase step
    ``2 pi df p T`` it implies — the two cues together keep positions
    separable even on short chirps (few samples per position step) and
    where the phase step aliases (``df * T * dp`` near an integer).
    """

    def __init__(self, alphabet: CssAlphabet) -> None:
        self.alphabet = alphabet
        self._cache: dict | None = None

    def _projectors(self, fs: float) -> dict:
        if self._cache is not None and self._cache["fs"] == fs:
            return self._cache
        cssk = self.alphabet.cssk
        n_slot = max(int(round(cssk.chirp_period_s * fs)), 8)
        fractions = self.alphabet.wrap_fractions()
        entries = []
        for slope_symbol, beat in enumerate(cssk.data_beats_hz):
            duration = cssk.data_symbol_duration_s(slope_symbol)
            n_on = min(int(round(duration * fs)), n_slot)
            if n_on < 16:
                raise ConfigurationError(
                    f"slope {slope_symbol} leaves only {n_on} samples; "
                    "raise the ADC rate for wrap-position keying"
                )
            omega = 2.0 * np.pi * beat / fs
            samples = np.arange(n_on, dtype=float)
            for position_index, fraction in enumerate(fractions):
                wrap_sample = fraction * duration * fs  # continuous time
                tau = np.where(samples < wrap_sample, samples, samples - wrap_sample)
                # Leading full-slot constant + ramp absorb baseline wander
                # (dropped from the score, as in TagDecoder._slot_projector).
                basis = np.zeros((n_slot, 5))
                basis[:, 0] = 1.0
                basis[:, 1] = np.linspace(-1.0, 1.0, n_slot)
                basis[:n_on, 2] = 1.0
                basis[:n_on, 3] = np.cos(omega * tau)
                basis[:n_on, 4] = np.sin(omega * tau)
                q, _ = np.linalg.qr(basis)
                entries.append((slope_symbol, position_index, q[:, 2:].T.copy()))
        projectors = np.stack([entry[2] for entry in entries])
        self._cache = {
            "fs": fs,
            "n_slot": n_slot,
            "labels": [(s, p) for s, p, _ in entries],
            "projectors": projectors,
        }
        return self._cache

    def demodulate_slot(self, slot_samples: np.ndarray, fs: float) -> tuple[int, int]:
        """ML (slope symbol, position index) for one slot."""
        cache = self._projectors(fs)
        n_slot = cache["n_slot"]
        x = np.asarray(slot_samples, dtype=float)
        if x.size >= n_slot:
            window = x[:n_slot]
        else:
            window = np.zeros(n_slot)
            window[: x.size] = x
        components = cache["projectors"] @ window  # (H, 3)
        scores = np.sum(components**2, axis=1)
        slope_symbol, position_index = cache["labels"][int(np.argmax(scores))]
        return slope_symbol, position_index

    def decode_payload(
        self,
        capture: TagCapture,
        *,
        num_symbols: int,
        start_slot: int,
    ) -> np.ndarray:
        """Genie-aligned payload decode (mirrors ``TagDecoder.decode_aligned``)."""
        if num_symbols < 1:
            raise ConfigurationError(f"num_symbols must be >= 1, got {num_symbols}")
        fs = capture.sample_rate_hz
        bits = []
        for k in range(start_slot, start_slot + num_symbols):
            samples = capture.slot_samples(k)
            if samples.size < 8:
                break
            slope_symbol, position_index = self.demodulate_slot(samples, fs)
            bits.append(self.alphabet.decode_symbol(slope_symbol, position_index))
        return np.concatenate(bits) if bits else np.empty(0, dtype=np.uint8)


def build_css_frame(
    alphabet: CssAlphabet,
    encoder,
    payload_bits: np.ndarray,
    *,
    fields=None,
):
    """Encode a CSS payload: returns (frame, wrap_fractions, padded_bits).

    The frame is a normal CSSK packet frame (the preamble is unchanged,
    keeping synchronization identical); ``wrap_fractions`` carries the
    per-slot wrap positions for the frontend (NaN on preamble slots).
    """
    from repro.core.packet import DownlinkPacket, PacketFields, pad_bits_to_symbols

    fields = fields or PacketFields()
    bits = pad_bits_to_symbols(
        np.asarray(payload_bits, dtype=np.uint8), alphabet.bits_per_symbol
    )
    num_symbols = bits.size // alphabet.bits_per_symbol
    slope_symbols = []
    position_indices = []
    for k in range(num_symbols):
        chunk = bits[k * alphabet.bits_per_symbol : (k + 1) * alphabet.bits_per_symbol]
        slope_symbol, position_index = alphabet.encode_bits(chunk)
        slope_symbols.append(slope_symbol)
        position_indices.append(position_index)
    slope_bits = np.concatenate(
        [alphabet.cssk.bits_for_symbol(s) for s in slope_symbols]
    )
    packet = DownlinkPacket.from_bits(alphabet.cssk, slope_bits, fields=fields)
    frame = encoder.encode_packet(packet)
    fractions = np.full(len(frame), np.nan)
    grid = alphabet.wrap_fractions()
    for k, position_index in enumerate(position_indices):
        fractions[fields.preamble_length + k] = grid[position_index]
    return frame, fractions, bits
