"""One-time delay-line calibration (paper Section 3.2.1)."""

import numpy as np
import pytest

from repro.channel.link_budget import DownlinkBudget
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.core.downlink import DownlinkEncoder
from repro.core.packet import DownlinkPacket
from repro.core.ber import random_bits
from repro.errors import ConfigurationError, DecodingError
from repro.radar.config import XBAND_9GHZ
from repro.tag.calibration import (
    CalibrationResult,
    calibrated_decoder_design,
    estimate_delta_t,
    measure_calibration_beats,
    recalibrate_alphabet,
)
from repro.tag.decoder_dsp import TagDecoder
from repro.tag.frontend import AnalyticTagFrontend


NOMINAL_K = 0.70
TRUE_K = 0.66  # the as-built line is slower than the datasheet says


@pytest.fixture(scope="module")
def setup():
    nominal_design = DecoderDesign.from_inches(45.0, velocity_factor=NOMINAL_K)
    true_design = DecoderDesign.from_inches(45.0, velocity_factor=TRUE_K)
    alphabet = CsskAlphabet.design(
        bandwidth_hz=1e9,
        decoder=nominal_design,
        symbol_bits=5,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )
    encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
    budget = DownlinkBudget(
        tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
        radar_antenna=XBAND_9GHZ.antenna,
        frequency_hz=XBAND_9GHZ.center_frequency_hz,
    )
    # The physical tag has the TRUE delay; the decoder believes the nominal.
    frontend = AnalyticTagFrontend(budget=budget, delta_t_s=true_design.delta_t_s)
    return alphabet, encoder, frontend, nominal_design, true_design


def run_calibration(setup):
    alphabet, encoder, frontend, nominal_design, _ = setup
    calibration_frame = encoder.sensing_frame(8)  # known header slope
    capture = frontend.capture(calibration_frame, 0.5, rng=0)  # paper: 0.5 m
    beats = measure_calibration_beats(capture, calibration_frame)
    return estimate_delta_t(beats, calibration_frame, nominal_design.delta_t_s)


class TestEstimation:
    def test_recovers_true_delay(self, setup):
        _, _, _, nominal_design, true_design = setup
        result = run_calibration(setup)
        assert result.estimated_delta_t_s == pytest.approx(
            true_design.delta_t_s, rel=0.01
        )
        assert result.scale_error == pytest.approx(NOMINAL_K / TRUE_K, rel=0.01)

    def test_residuals_small(self, setup):
        result = run_calibration(setup)
        assert result.residual_rms_hz < 0.02 * np.mean(result.per_chirp_beats_hz)

    def test_needs_two_chirps(self, setup):
        alphabet, encoder, frontend, nominal_design, _ = setup
        frame = encoder.sensing_frame(1)
        capture = frontend.capture(frame, 0.5, rng=1)
        beats = measure_calibration_beats(capture, frame)
        with pytest.raises(ConfigurationError):
            estimate_delta_t(beats, frame, nominal_design.delta_t_s)

    def test_measurement_count_checked(self, setup):
        _, encoder, _, nominal_design, _ = setup
        frame = encoder.sensing_frame(4)
        with pytest.raises(ConfigurationError):
            estimate_delta_t(np.ones(3), frame, nominal_design.delta_t_s)


class TestCorrection:
    def test_corrected_design_velocity_factor(self, setup):
        _, _, _, nominal_design, _ = setup
        result = run_calibration(setup)
        corrected = calibrated_decoder_design(nominal_design, result)
        assert corrected.velocity_factor == pytest.approx(TRUE_K, rel=0.01)

    def test_unphysical_calibration_rejected(self, setup):
        _, _, _, nominal_design, _ = setup
        bogus = CalibrationResult(
            estimated_delta_t_s=nominal_design.delta_t_s * 20,
            nominal_delta_t_s=nominal_design.delta_t_s,
            per_chirp_beats_hz=np.ones(4),
            residual_rms_hz=0.0,
        )
        with pytest.raises(DecodingError):
            calibrated_decoder_design(nominal_design, bogus)

    def test_recalibrated_alphabet_durations_unchanged(self, setup):
        alphabet, *_ = setup
        result = run_calibration(setup)
        corrected = recalibrate_alphabet(alphabet, result)
        # The radar's transmit schedule is untouched...
        for symbol in (0, 15, 31):
            assert corrected.data_symbol_duration_s(symbol) == pytest.approx(
                alphabet.data_symbol_duration_s(symbol), rel=1e-9
            )
        # ...but the expected beats moved to the physical truth.
        assert corrected.data_beats_hz[0] == pytest.approx(
            alphabet.data_beats_hz[0] * result.scale_error, rel=1e-9
        )


class TestEndToEndBenefit:
    def measure_ber(self, setup, decode_alphabet, trials=8):
        alphabet, encoder, frontend, *_ = setup
        decoder = TagDecoder(decode_alphabet)
        errors = 0
        total = 0
        for trial in range(trials):
            bits = random_bits(5 * 16, rng=trial)
            packet = DownlinkPacket.from_bits(alphabet, bits)
            frame = encoder.encode_packet(packet)
            capture = frontend.capture(frame, 3.0, rng=100 + trial)
            decoded = decoder.decode_aligned(capture, num_payload_symbols=16)
            errors += int(np.sum(bits[: decoded.bits.size] != decoded.bits))
            errors += bits.size - decoded.bits.size
            total += bits.size
        return errors / total

    def test_calibration_repairs_the_link(self, setup):
        alphabet, *_ = setup
        result = run_calibration(setup)
        corrected = recalibrate_alphabet(alphabet, result)
        uncalibrated_ber = self.measure_ber(setup, alphabet)
        calibrated_ber = self.measure_ber(setup, corrected)
        # The ~6% delay error wrecks the nominal decision table...
        assert uncalibrated_ber > 0.05
        # ...and the one-time calibration restores a clean link.
        assert calibrated_ber < 1e-3
