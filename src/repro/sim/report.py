"""Session reports: human-readable summaries of ISAC runs.

A deployment tool: run a batch of integrated exchanges and get a Markdown
report a systems engineer can paste into a ticket — per-frame metrics,
aggregates, and link-health verdicts against configurable targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.isac import IsacFrameResult
from repro.errors import SimulationError
from repro.sim.results import format_table
from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class LinkTargets:
    """Health thresholds a deployment requires."""

    max_downlink_ber: float = 1e-3
    max_uplink_ber: float = 1e-2
    max_ranging_error_m: float = 0.05

    def __post_init__(self) -> None:
        for name in ("max_downlink_ber", "max_uplink_ber", "max_ranging_error_m"):
            value = getattr(self, name)
            if value < 0:
                raise SimulationError(f"{name} must be >= 0, got {value}")


@dataclass
class SessionReport:
    """Aggregated metrics over a batch of ISAC frames."""

    num_frames: int
    downlink_bits: int
    downlink_errors: int
    uplink_bits: int
    uplink_errors: int
    ranging_errors_m: "list[float]" = field(default_factory=list)
    velocities_m_s: "list[float]" = field(default_factory=list)
    per_frame_rows: "list[list[str]]" = field(default_factory=list)
    erased_frames: int = 0

    @property
    def downlink_ber(self) -> float:
        return self.downlink_errors / self.downlink_bits if self.downlink_bits else 0.0

    @property
    def uplink_ber(self) -> float:
        return self.uplink_errors / self.uplink_bits if self.uplink_bits else 0.0

    def median_ranging_error_m(self) -> float:
        return float(np.median(self.ranging_errors_m)) if self.ranging_errors_m else 0.0

    def worst_ranging_error_m(self) -> float:
        return float(np.max(self.ranging_errors_m)) if self.ranging_errors_m else 0.0

    def healthy(
        self,
        targets: LinkTargets | None = None,
        *,
        require_ranging: bool = False,
    ) -> bool:
        """Whether every aggregate meets the deployment targets.

        With no ranging data the ranging check passes *vacuously* —
        ``worst_ranging_error_m()`` is 0.0 because nothing was measured,
        not because the link ranged well.  ``require_ranging=True``
        closes that hole for deployments where localization is part of
        the contract: an empty ``ranging_errors_m`` then fails the check.
        """
        targets = targets or LinkTargets()
        if require_ranging and not self.ranging_errors_m:
            return False
        return (
            self.downlink_ber <= targets.max_downlink_ber
            and self.uplink_ber <= targets.max_uplink_ber
            and self.worst_ranging_error_m() <= targets.max_ranging_error_m
        )

    def to_markdown(self, *, title: str = "BiScatter session report") -> str:
        """Render the full report as Markdown."""
        lines = [f"# {title}", ""]
        lines.append(f"frames: {self.num_frames}")
        lines.append(
            f"downlink: {self.downlink_bits} bits, BER {self.downlink_ber:.2e}"
        )
        lines.append(f"uplink: {self.uplink_bits} bits, BER {self.uplink_ber:.2e}")
        if self.erased_frames:
            lines.append(
                f"erased frames: {self.erased_frames}/{self.num_frames} "
                "(decode failures recorded as erasures; erased bits count "
                "as errors)"
            )
        if self.ranging_errors_m:
            lines.append(
                f"ranging error: median {self.median_ranging_error_m() * 100:.2f} cm, "
                f"worst {self.worst_ranging_error_m() * 100:.2f} cm"
            )
        else:
            lines.append(
                "ranging error: no ranging data (localization not run or "
                "ground truth unknown)"
            )
        lines.append(f"healthy (default targets): {'yes' if self.healthy() else 'NO'}")
        lines.append("")
        lines.append("```")
        lines.append(
            format_table(
                ["frame", "DL errs", "UL errs", "range (m)", "velocity (m/s)"],
                self.per_frame_rows,
            )
        )
        lines.append("```")
        return "\n".join(lines)


def build_report(
    results: "list[IsacFrameResult]",
    *,
    true_range_m: float | None = None,
) -> SessionReport:
    """Aggregate a batch of frame results into a report.

    ``true_range_m`` (when the ground truth is known — simulations,
    surveyed deployments) enables the ranging-error statistics.
    """
    if not results:
        raise SimulationError("cannot report on zero frames")
    if true_range_m is not None:
        ensure_positive("true_range_m", true_range_m)
    report = SessionReport(
        num_frames=len(results),
        downlink_bits=0,
        downlink_errors=0,
        uplink_bits=0,
        uplink_errors=0,
    )
    for index, result in enumerate(results):
        report.downlink_bits += int(result.downlink_bits_sent.size)
        report.downlink_errors += int(result.downlink_bit_errors)
        report.uplink_bits += int(result.uplink_bits_sent.size)
        report.uplink_errors += int(result.uplink_bit_errors)
        report.erased_frames += int(bool(result.erasures))
        range_text = "-"
        velocity_text = "-"
        if result.localization is not None:
            range_text = f"{result.localization.range_m:.3f}"
            if true_range_m is not None:
                report.ranging_errors_m.append(
                    abs(result.localization.range_m - true_range_m)
                )
        if result.estimated_velocity_m_s is not None:
            velocity_text = f"{result.estimated_velocity_m_s:+.2f}"
            report.velocities_m_s.append(result.estimated_velocity_m_s)
        report.per_frame_rows.append(
            [
                str(index),
                str(result.downlink_bit_errors),
                str(result.uplink_bit_errors),
                range_text,
                velocity_text,
            ]
        )
    return report
