"""Phase-exact chirp sample synthesis.

Two representations are provided:

* ``sample_chirp_real`` — the passband signal of Eq. 1,
  ``A cos(2 pi (f0 t + (alpha/2) t^2))``, only practical for scaled-down
  validation cases (passband sampling of a 9 GHz carrier is not
  laptop-scale).

* ``sample_chirp_baseband`` — the complex envelope relative to a chosen
  reference frequency.  A delay applied to the passband signal maps to a
  delay *plus* the carrier phase rotation ``exp(-j 2 pi f_ref tau)`` on the
  envelope, which is how the circuit-level tag frontend and the radar IF
  synthesis stay exact without passband rates.

Note on Eq. 1's slope convention: the paper writes the phase as
``2 pi (f0 t + alpha t^2)`` and separately defines ``alpha = B/T``.  For the
instantaneous frequency to sweep exactly ``B`` over ``T`` the quadratic
coefficient must be ``alpha / 2``; we follow the physically consistent
convention (phase ``2 pi (f0 t + (alpha/2) t^2)``) used by every FMCW text,
so the sweep covers precisely the configured bandwidth.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.waveform.parameters import ChirpParameters


def _time_axis(params: ChirpParameters, sample_rate_hz: float) -> np.ndarray:
    if sample_rate_hz <= 0:
        raise ConfigurationError(f"sample_rate_hz must be positive, got {sample_rate_hz!r}")
    num = int(round(params.duration_s * sample_rate_hz))
    if num < 2:
        raise ConfigurationError(
            f"chirp of {params.duration_s}s at {sample_rate_hz}Hz yields {num} samples; "
            "increase the sample rate"
        )
    return np.arange(num) / sample_rate_hz


def chirp_phase(
    params: ChirpParameters, t: np.ndarray, *, delay_s: "float | np.ndarray" = 0.0
) -> np.ndarray:
    """Instantaneous passband phase (radians) of the chirp at times ``t``.

    ``phi(t) = 2 pi (f0 (t - d) + (alpha / 2) (t - d)^2)`` for delay ``d``.
    Times outside ``[delay, delay + T_chirp)`` are still evaluated (callers
    mask them); the quadratic model simply extrapolates.

    ``delay_s`` may be an array of delays: a ``(k,)`` delay vector against a
    ``(n,)`` time axis yields a ``(k, n)`` phase matrix whose row ``i`` is
    bit-identical to the scalar call with ``delay_s[i]`` (the batched path
    is the same elementwise arithmetic, broadcast).
    """
    delay = np.asarray(delay_s, dtype=float)
    if delay.ndim:
        shifted = np.asarray(t, dtype=float) - delay[..., None]
    else:
        shifted = np.asarray(t, dtype=float) - float(delay)
    alpha = params.slope_hz_per_s
    return 2.0 * np.pi * (params.start_frequency_hz * shifted + 0.5 * alpha * shifted**2)


def sample_chirp_real(
    params: ChirpParameters, sample_rate_hz: float, *, delay_s: "float | np.ndarray" = 0.0
) -> np.ndarray:
    """Real passband samples of the chirp (Eq. 1), for scaled validation.

    An array ``delay_s`` of shape ``(k,)`` yields ``(k, num_samples)`` —
    one row per delay, each bit-identical to the scalar-delay call.
    """
    t = _time_axis(params, sample_rate_hz)
    return params.amplitude * np.cos(chirp_phase(params, t, delay_s=delay_s))


def sample_chirp_baseband(
    params: ChirpParameters,
    sample_rate_hz: float,
    *,
    reference_frequency_hz: float | None = None,
    delay_s: "float | np.ndarray" = 0.0,
) -> np.ndarray:
    """Complex-envelope samples of the chirp relative to a reference carrier.

    The envelope of a chirp delayed by ``tau`` (measured against reference
    ``f_ref``) is::

        A exp(j 2 pi ((f0 - f_ref)(t - tau) + (alpha/2)(t - tau)^2))
          * exp(-j 2 pi f_ref tau)

    With ``f_ref = f0`` (the default) this is the textbook baseband chirp
    with the carrier phase rotation of the delay preserved, so that mixing
    and envelope detection on envelopes reproduce passband behaviour exactly
    (for the narrowband components modelled here).

    An array ``delay_s`` of shape ``(k,)`` yields ``(k, num_samples)`` —
    one row per delay, each bit-identical to the scalar-delay call.
    """
    f_ref = params.start_frequency_hz if reference_frequency_hz is None else reference_frequency_hz
    if f_ref <= 0:
        raise ConfigurationError(f"reference frequency must be positive, got {f_ref!r}")
    t = _time_axis(params, sample_rate_hz)
    delay = np.asarray(delay_s, dtype=float)
    if delay.ndim:
        shifted = t - delay[..., None]
        carrier_rotation = -2.0 * np.pi * f_ref * delay[..., None]
    else:
        shifted = t - float(delay)
        carrier_rotation = -2.0 * np.pi * f_ref * float(delay)
    alpha = params.slope_hz_per_s
    envelope_phase = 2.0 * np.pi * (
        (params.start_frequency_hz - f_ref) * shifted + 0.5 * alpha * shifted**2
    )
    return params.amplitude * np.exp(1j * (envelope_phase + carrier_rotation))


def instantaneous_frequency(
    params: ChirpParameters, t: np.ndarray, *, delay_s: "float | np.ndarray" = 0.0
) -> np.ndarray:
    """Instantaneous passband frequency (Hz) of the chirp at times ``t``.

    Broadcasts like :func:`chirp_phase`: an array ``delay_s`` adds a
    leading per-delay axis.
    """
    delay = np.asarray(delay_s, dtype=float)
    if delay.ndim:
        shifted = np.asarray(t, dtype=float) - delay[..., None]
    else:
        shifted = np.asarray(t, dtype=float) - float(delay)
    return params.start_frequency_hz + params.slope_hz_per_s * shifted
