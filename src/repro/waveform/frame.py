"""Frame schedules: sequences of chirps with inter-chirp delays.

BiScatter fixes the chirp *period* ``T_period`` (bit duration) and varies
the chirp *duration* within it; the inter-chirp delay absorbs the
difference (``T_interC = T_period - T_chirp``).  Commercial radars impose a
minimum inter-chirp delay, which the paper captures as "the maximum chirp
duration cannot be larger than 80% of T_period".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import MAX_CHIRP_DUTY
from repro.errors import WaveformError
from repro.utils.validation import ensure_positive
from repro.waveform.parameters import ChirpParameters


@dataclass(frozen=True)
class ChirpSlot:
    """One chirp positioned inside a frame.

    Attributes
    ----------
    chirp:
        The chirp transmitted in this slot.
    start_time_s:
        Slot start relative to the start of the frame.
    period_s:
        Total slot length (chirp duration + inter-chirp delay).
    symbol:
        Optional CSSK symbol index this slot encodes (None for
        sensing-only / preamble-role slots; roles are tracked by the packet
        layer).
    """

    chirp: ChirpParameters
    start_time_s: float
    period_s: float
    symbol: int | None = None

    def __post_init__(self) -> None:
        ensure_positive("period_s", self.period_s)
        if self.start_time_s < 0:
            raise WaveformError(f"start_time_s must be non-negative, got {self.start_time_s!r}")
        if self.chirp.duration_s > self.period_s + 1e-15:
            raise WaveformError(
                f"chirp duration {self.chirp.duration_s}s exceeds slot period {self.period_s}s"
            )

    @property
    def inter_chirp_delay_s(self) -> float:
        """Idle time after the chirp within the slot."""
        return self.period_s - self.chirp.duration_s

    @property
    def end_time_s(self) -> float:
        """Slot end relative to the start of the frame."""
        return self.start_time_s + self.period_s

    @property
    def duty(self) -> float:
        """Fraction of the slot occupied by the chirp."""
        return self.chirp.duration_s / self.period_s


@dataclass(frozen=True)
class FrameSchedule:
    """An ordered train of chirp slots forming one radar frame."""

    slots: tuple[ChirpSlot, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        previous_end = 0.0
        for index, slot in enumerate(self.slots):
            if slot.start_time_s < previous_end - 1e-15:
                raise WaveformError(
                    f"slot {index} starts at {slot.start_time_s}s before the previous "
                    f"slot ends at {previous_end}s"
                )
            previous_end = slot.end_time_s

    @classmethod
    def from_chirps(
        cls,
        chirps: "list[ChirpParameters] | tuple[ChirpParameters, ...]",
        period_s: float,
        *,
        symbols: "list[int | None] | None" = None,
        max_duty: float = MAX_CHIRP_DUTY,
    ) -> "FrameSchedule":
        """Build a uniform-period frame from a chirp sequence.

        Enforces the commercial-radar duty constraint: every chirp must fit
        within ``max_duty`` of the period.
        """
        ensure_positive("period_s", period_s)
        if symbols is not None and len(symbols) != len(chirps):
            raise WaveformError(
                f"symbols length {len(symbols)} != chirps length {len(chirps)}"
            )
        slots = []
        for index, chirp in enumerate(chirps):
            if chirp.duration_s > max_duty * period_s + 1e-15:
                raise WaveformError(
                    f"chirp {index} duration {chirp.duration_s}s exceeds "
                    f"{max_duty:.0%} of period {period_s}s"
                )
            symbol = symbols[index] if symbols is not None else None
            slots.append(
                ChirpSlot(
                    chirp=chirp,
                    start_time_s=index * period_s,
                    period_s=period_s,
                    symbol=symbol,
                )
            )
        return cls(slots=tuple(slots))

    def __len__(self) -> int:
        return len(self.slots)

    def __iter__(self):
        return iter(self.slots)

    def __getitem__(self, index: int) -> ChirpSlot:
        return self.slots[index]

    @property
    def duration_s(self) -> float:
        """Total frame duration."""
        return self.slots[-1].end_time_s if self.slots else 0.0

    @property
    def chirps(self) -> tuple[ChirpParameters, ...]:
        """The chirps in slot order."""
        return tuple(slot.chirp for slot in self.slots)

    @property
    def symbols(self) -> tuple["int | None", ...]:
        """Symbol annotations in slot order."""
        return tuple(slot.symbol for slot in self.slots)

    @property
    def slopes_hz_per_s(self) -> np.ndarray:
        """Array of chirp slopes in slot order."""
        return np.array([slot.chirp.slope_hz_per_s for slot in self.slots])

    def uniform_period_s(self) -> float:
        """The common slot period, or raise if slots have mixed periods."""
        if not self.slots:
            raise WaveformError("empty frame has no period")
        periods = {round(slot.period_s, 15) for slot in self.slots}
        if len(periods) != 1:
            raise WaveformError(f"frame has mixed slot periods: {sorted(periods)}")
        return self.slots[0].period_s

    def concatenated(self, other: "FrameSchedule") -> "FrameSchedule":
        """Append ``other`` after this frame, shifting its slot times."""
        offset = self.duration_s
        shifted = tuple(
            ChirpSlot(
                chirp=slot.chirp,
                start_time_s=slot.start_time_s + offset,
                period_s=slot.period_s,
                symbol=slot.symbol,
            )
            for slot in other.slots
        )
        return FrameSchedule(slots=self.slots + shifted)
