"""Radar-side downlink encoding: packets -> chirp frame schedules.

The encoder only manipulates parameters an off-the-shelf FMCW radar
exposes — per-chirp duration (slope) and inter-chirp delay — which is the
paper's commercial-radar-compatibility argument.  Sensing-only frames
(fixed slope) come from the same API so the ISAC layer can mix modes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cssk import CsskAlphabet
from repro.core.packet import DownlinkPacket, FieldType
from repro.errors import WaveformError
from repro.radar.config import RadarConfig
from repro.waveform.frame import FrameSchedule
from repro.waveform.parameters import ChirpParameters


@dataclass(frozen=True)
class DownlinkEncoder:
    """Builds transmittable frames from packets for a given radar platform.

    Parameters
    ----------
    radar_config:
        The radar whose chirp-timing limits must be respected.
    alphabet:
        The CSSK alphabet shared with the tag.
    """

    radar_config: RadarConfig
    alphabet: CsskAlphabet

    def __post_init__(self) -> None:
        # Every alphabet duration must be transmittable by this radar.
        period = self.alphabet.chirp_period_s
        longest = self.alphabet.header_duration_s
        shortest = self.alphabet.sync_duration_s
        if longest > self.radar_config.max_chirp_duration_for_period(period) + 1e-12:
            raise WaveformError(
                f"alphabet's longest chirp {longest}s violates the duty/platform limit "
                f"{self.radar_config.max_chirp_duration_for_period(period)}s"
            )
        if shortest < self.radar_config.min_chirp_duration_s - 1e-12:
            raise WaveformError(
                f"alphabet's shortest chirp {shortest}s is below the platform minimum "
                f"{self.radar_config.min_chirp_duration_s}s"
            )
        if self.alphabet.bandwidth_hz > self.radar_config.max_bandwidth_hz + 1e-6:
            raise WaveformError(
                f"alphabet bandwidth {self.alphabet.bandwidth_hz}Hz exceeds platform "
                f"maximum {self.radar_config.max_bandwidth_hz}Hz"
            )

    def _chirp_for_duration(self, duration_s: float) -> ChirpParameters:
        return ChirpParameters(
            start_frequency_hz=self.radar_config.start_frequency_hz,
            bandwidth_hz=self.alphabet.bandwidth_hz,
            duration_s=duration_s,
        )

    def encode_packet(self, packet: DownlinkPacket) -> FrameSchedule:
        """Frame schedule carrying one downlink packet."""
        if packet.alphabet is not self.alphabet and packet.alphabet != self.alphabet:
            raise WaveformError("packet was built with a different alphabet")
        chirps = []
        symbols: "list[int | None]" = []
        for role, symbol in zip(packet.roles(), packet.symbol_sequence()):
            if role is FieldType.HEADER:
                duration = self.alphabet.header_duration_s
            elif role is FieldType.SYNC:
                duration = self.alphabet.sync_duration_s
            else:
                duration = self.alphabet.data_symbol_duration_s(symbol)
            chirps.append(self._chirp_for_duration(duration))
            symbols.append(symbol)
        return FrameSchedule.from_chirps(
            chirps, self.alphabet.chirp_period_s, symbols=symbols
        )

    def sensing_frame(
        self, num_chirps: int, *, duration_s: float | None = None
    ) -> FrameSchedule:
        """A fixed-slope (sensing-only / uplink-only) frame.

        Uses the header slope by default so the tag recognizes the radar is
        not sending payload.
        """
        if num_chirps < 1:
            raise WaveformError(f"num_chirps must be >= 1, got {num_chirps}")
        duration = self.alphabet.header_duration_s if duration_s is None else duration_s
        chirps = [self._chirp_for_duration(duration)] * num_chirps
        return FrameSchedule.from_chirps(chirps, self.alphabet.chirp_period_s)

    def expected_beats_hz(self, frame: FrameSchedule) -> np.ndarray:
        """Ground-truth beat frequency of every slot (for tests/benches)."""
        delta_t = self.alphabet.decoder.delta_t_s
        return np.array([slot.chirp.slope_hz_per_s * delta_t for slot in frame.slots])
