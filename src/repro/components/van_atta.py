"""Van Atta retro-reflective array model (paper Section 2.3).

A Van Atta array connects antenna pairs with equal-length transmission
lines so that the incident phase gradient is re-radiated conjugated — the
reflection returns toward the source regardless of incidence angle (within
the element pattern).  BiScatter places an SPDT switch mid-line so the
array toggles between retro-reflective and absorptive (decode) modes.

The model captures what the link budget and uplink modulation need: the
monostatic radar cross-section (RCS) of the array versus incidence angle
and the complex reflection coefficient in each switch state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.components.rf_switch import SpdtSwitch, SwitchState
from repro.utils.units import wavelength
from repro.utils.validation import ensure_in_range, ensure_positive


@dataclass(frozen=True)
class VanAttaArray:
    """Retro-reflective backscatter array with a modulating switch.

    Parameters
    ----------
    num_elements:
        Number of antenna elements (the paper's prototype uses a 2-element
        array; larger arrays raise RCS as N^2).
    element_gain_dbi:
        Gain of one element.
    element_spacing_wavelengths:
        Inter-element spacing in wavelengths (for the angular pattern).
    line_loss_db:
        One-way transmission-line loss between a pair (traversed once per
        retro-reflection).
    switch:
        The SPDT switch toggling reflective/absorptive modes.
    retro_field_of_view_deg:
        Half-angle within which retro-reflectivity holds (limited by the
        element pattern).
    """

    num_elements: int = 2
    element_gain_dbi: float = 5.0
    element_spacing_wavelengths: float = 0.5
    line_loss_db: float = 1.0
    switch: SpdtSwitch = field(default_factory=SpdtSwitch)
    retro_field_of_view_deg: float = 45.0

    def __post_init__(self) -> None:
        if self.num_elements < 2 or self.num_elements % 2:
            raise ValueError(
                f"a Van Atta array needs an even number of elements >= 2, got {self.num_elements}"
            )
        ensure_in_range("element_spacing_wavelengths", self.element_spacing_wavelengths, 0.1, 10.0)
        if self.line_loss_db < 0:
            raise ValueError(f"line_loss_db must be >= 0, got {self.line_loss_db!r}")
        ensure_positive("retro_field_of_view_deg", self.retro_field_of_view_deg)

    def reflection_coefficient(self, state: SwitchState) -> float:
        """Amplitude reflection coefficient of the array in a switch state.

        Includes one traversal of the pair transmission line and the switch
        through-path (reflective) or its isolation leakage (absorptive).
        """
        line = 10.0 ** (-self.line_loss_db / 20.0)
        return line * self.switch.reflection_amplitude(state)

    def rcs_m2(
        self,
        frequency_hz: float,
        *,
        incidence_deg: float = 0.0,
        state: SwitchState = SwitchState.REFLECTIVE,
    ) -> float:
        """Monostatic RCS of the array toward the illuminating radar.

        The peak RCS of an N-element retro-directive array of elements with
        gain G is ``sigma = N^2 G^2 lambda^2 / (4 pi)``, de-rated by line
        and switch losses (power, so amplitude coefficient squared) and by
        the element pattern at the incidence angle.  Outside the retro field
        of view the RCS collapses to a flat-plate-like glint modelled as
        1% of peak.
        """
        ensure_positive("frequency_hz", frequency_hz)
        lam = wavelength(frequency_hz)
        element_gain = 10.0 ** (self.element_gain_dbi / 10.0)
        peak = (self.num_elements**2) * element_gain**2 * lam**2 / (4.0 * np.pi)
        peak *= self.reflection_coefficient(state) ** 2
        angle = abs(incidence_deg)
        if angle > self.retro_field_of_view_deg:
            return peak * 0.01
        # Element-pattern rolloff: cos^2 within the field of view.
        return peak * float(np.cos(np.radians(angle)) ** 2)

    def modulated_rcs_amplitudes(self, frequency_hz: float, *, incidence_deg: float = 0.0) -> tuple[float, float]:
        """(reflective, absorptive) RCS pair — the OOK modulation levels."""
        return (
            self.rcs_m2(frequency_hz, incidence_deg=incidence_deg, state=SwitchState.REFLECTIVE),
            self.rcs_m2(frequency_hz, incidence_deg=incidence_deg, state=SwitchState.ABSORPTIVE),
        )
