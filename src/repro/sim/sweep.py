"""Generic parameter-sweep helper with reproducible per-point seeding."""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.sim.results import SweepResult
from repro.utils.rng import resolve_rng


def sweep(
    label: str,
    parameters: "Sequence[float]",
    evaluate: "Callable[[float, np.random.Generator], float]",
    *,
    rng: int | np.random.Generator | None = 0,
    metadata: "dict[str, Any] | None" = None,
) -> SweepResult:
    """Evaluate ``evaluate(parameter, rng)`` over a parameter list.

    Each point receives an independent child RNG spawned from the parent,
    so (a) the whole sweep is reproducible from one seed and (b) editing
    one point's workload does not perturb the others.
    """
    params = [float(p) for p in parameters]
    if not params:
        raise ValueError("parameters must be non-empty")
    streams = resolve_rng(rng).spawn(len(params))
    values = [float(evaluate(p, stream)) for p, stream in zip(params, streams)]
    return SweepResult(
        label=label,
        parameters=params,
        values=values,
        metadata=dict(metadata or {}),
    )


def sweep_grid(
    series: "dict[str, Any]",
    parameters: "Sequence[float]",
    evaluate: "Callable[[Any, float, np.random.Generator], float]",
    *,
    rng: int | np.random.Generator | None = 0,
) -> "list[SweepResult]":
    """Sweep the same parameter list for several labelled series.

    ``series`` maps label -> series context object passed to ``evaluate``;
    returns one :class:`SweepResult` per series.
    """
    if not series:
        raise ValueError("series must be non-empty")
    parent = resolve_rng(rng)
    results = []
    for label, context in series.items():
        child = parent.spawn(1)[0]
        results.append(
            sweep(
                label,
                parameters,
                lambda p, stream, ctx=context: evaluate(ctx, p, stream),
                rng=child,
                metadata={"series": label},
            )
        )
    return results
