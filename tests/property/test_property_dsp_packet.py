"""Property-based tests: DSP kernels, packets, frames, units, budgets."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.packet import DownlinkPacket, pad_bits_to_symbols
from repro.utils.dsp import (
    goertzel_power,
    goertzel_power_many,
    parabolic_peak_offset,
    quantize_uniform,
)
from repro.utils.units import (
    db_to_power_ratio,
    dbm_to_watts,
    power_ratio_to_db,
    watts_to_dbm,
)
from repro.waveform.frame import FrameSchedule
from repro.waveform.parameters import ChirpParameters


class TestUnitProperties:
    @given(st.floats(min_value=-120, max_value=120))
    def test_db_roundtrip(self, db):
        assert power_ratio_to_db(db_to_power_ratio(db)) == pytest.approx(db, abs=1e-9)

    @given(st.floats(min_value=-120, max_value=60))
    def test_dbm_roundtrip(self, dbm):
        assert watts_to_dbm(dbm_to_watts(dbm)) == pytest.approx(dbm, abs=1e-9)

    @given(st.floats(min_value=-60, max_value=60), st.floats(min_value=-60, max_value=60))
    def test_db_addition_is_multiplication(self, a, b):
        assert db_to_power_ratio(a + b) == pytest.approx(
            db_to_power_ratio(a) * db_to_power_ratio(b), rel=1e-9
        )


class TestGoertzelProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=5e3, max_value=400e3),
        st.floats(min_value=0.1, max_value=5.0),
        st.floats(min_value=0, max_value=2 * np.pi),
    )
    def test_matched_power_tracks_amplitude(self, freq, amplitude, phase):
        fs = 1e6
        n = 1000
        tone = amplitude * np.cos(2 * np.pi * freq * np.arange(n) / fs + phase)
        power = goertzel_power(tone, freq, fs)
        assert power == pytest.approx((amplitude / 2) ** 2, rel=0.1)

    @settings(max_examples=30, deadline=None)
    @given(arrays(np.float64, st.integers(16, 256), elements=st.floats(-10, 10)))
    def test_scalar_vector_agreement(self, samples):
        fs = 1e6
        freq = 123e3
        scalar = goertzel_power(samples, freq, fs)
        vector = goertzel_power_many(samples, np.array([freq]), fs)[0]
        assert scalar == pytest.approx(vector, rel=1e-6, abs=1e-12)


class TestParabolicProperties:
    @given(
        st.floats(min_value=0.01, max_value=100),
        st.floats(min_value=-0.45, max_value=0.45),
    )
    def test_recovers_true_parabola_vertex(self, curvature, offset):
        def parabola(x):
            return 10.0 - curvature * (x - offset) ** 2

        estimate = parabolic_peak_offset(parabola(-1), parabola(0), parabola(1))
        assert estimate == pytest.approx(offset, abs=1e-6)

    @given(st.floats(0, 10), st.floats(0, 10), st.floats(0, 10))
    def test_always_bounded(self, left, center, right):
        assert abs(parabolic_peak_offset(left, center, right)) <= 0.5


class TestQuantizerProperties:
    @settings(max_examples=30)
    @given(
        arrays(np.float64, st.integers(1, 64), elements=st.floats(-2, 2)),
        st.integers(min_value=2, max_value=16),
    )
    def test_error_bounded_by_lsb(self, samples, bits):
        full_scale = 2.0
        out = quantize_uniform(samples, bits, full_scale)
        lsb = 2 * full_scale / 2**bits
        assert np.all(np.abs(out - np.clip(samples, -2, 2 - lsb / 2)) <= lsb)

    @settings(max_examples=30)
    @given(
        arrays(np.float64, st.integers(1, 64), elements=st.floats(-100, 100)),
        st.integers(min_value=1, max_value=16),
    )
    def test_output_within_range(self, samples, bits):
        out = quantize_uniform(samples, bits, 1.0)
        assert np.all(out <= 1.0) and np.all(out >= -1.0)

    @settings(max_examples=20)
    @given(st.integers(min_value=2, max_value=12))
    def test_idempotent(self, bits):
        x = np.linspace(-0.9, 0.9, 50)
        once = quantize_uniform(x, bits, 1.0)
        twice = quantize_uniform(once, bits, 1.0)
        np.testing.assert_allclose(once, twice)


def _paper_alphabet():
    from repro.core.cssk import CsskAlphabet, DecoderDesign

    return CsskAlphabet.design(
        bandwidth_hz=1e9,
        decoder=DecoderDesign.from_inches(45.0),
        symbol_bits=5,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )


PAPER_ALPHABET = _paper_alphabet()


class TestPacketProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=1, max_size=40))
    def test_payload_roundtrip_through_symbols(self, raw):
        alphabet = PAPER_ALPHABET
        bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8))
        bits = pad_bits_to_symbols(bits, alphabet.symbol_bits)
        packet = DownlinkPacket.from_bits(alphabet, bits)
        symbols = packet.payload_symbols()
        recovered = np.concatenate([alphabet.bits_for_symbol(s) for s in symbols])
        np.testing.assert_array_equal(recovered, bits)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=64))
    def test_slot_count_linear_in_symbols(self, num_symbols):
        alphabet = PAPER_ALPHABET
        bits = np.zeros(num_symbols * alphabet.symbol_bits, dtype=np.uint8)
        packet = DownlinkPacket.from_bits(alphabet, bits)
        assert packet.num_slots == packet.fields.preamble_length + num_symbols

    @given(st.integers(min_value=1, max_value=100), st.integers(min_value=1, max_value=16))
    def test_padding_properties(self, nbits, symbol_bits):
        bits = np.ones(nbits, dtype=np.uint8)
        padded = pad_bits_to_symbols(bits, symbol_bits)
        assert padded.size % symbol_bits == 0
        assert padded.size - nbits < symbol_bits
        np.testing.assert_array_equal(padded[:nbits], bits)


class TestFrameProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(min_value=20e-6, max_value=96e-6), min_size=1, max_size=32),
    )
    def test_frame_times_monotone(self, durations):
        chirps = [
            ChirpParameters(start_frequency_hz=9e9, bandwidth_hz=1e9, duration_s=d)
            for d in durations
        ]
        frame = FrameSchedule.from_chirps(chirps, 120e-6)
        starts = [slot.start_time_s for slot in frame.slots]
        assert starts == sorted(starts)
        assert frame.duration_s == pytest.approx(len(durations) * 120e-6)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=20e-6, max_value=96e-6), st.integers(1, 20))
    def test_concatenation_preserves_length(self, duration, count):
        chirp = ChirpParameters(start_frequency_hz=9e9, bandwidth_hz=1e9, duration_s=duration)
        frame = FrameSchedule.from_chirps([chirp] * count, 120e-6)
        double = frame.concatenated(frame)
        assert len(double) == 2 * count
        assert double.duration_s == pytest.approx(2 * frame.duration_s)
