"""Forward error correction: Hamming(7,4), interleaving, link benefit."""

import numpy as np
import pytest

from repro.core.fec import (
    FecConfig,
    deinterleave,
    hamming74_decode,
    hamming74_encode,
    interleave,
)
from repro.core.ber import random_bits
from repro.errors import ConfigurationError, PacketError


class TestHamming:
    def test_roundtrip_clean(self):
        data = random_bits(40, rng=0)
        decoded, corrected = hamming74_decode(hamming74_encode(data))
        np.testing.assert_array_equal(decoded, data)
        assert corrected == 0

    def test_corrects_any_single_error_per_codeword(self):
        data = random_bits(4, rng=1)
        codeword = hamming74_encode(data)
        for position in range(7):
            corrupted = codeword.copy()
            corrupted[position] ^= 1
            decoded, corrected = hamming74_decode(corrupted)
            np.testing.assert_array_equal(decoded, data, err_msg=f"pos {position}")
            assert corrected == 1

    def test_rate_is_7_over_4(self):
        assert hamming74_encode(random_bits(16, rng=2)).size == 28

    def test_double_error_miscorrects(self):
        # Known limitation: two errors in one codeword defeat Hamming(7,4).
        data = np.zeros(4, dtype=np.uint8)
        codeword = hamming74_encode(data)
        corrupted = codeword.copy()
        corrupted[0] ^= 1
        corrupted[3] ^= 1
        decoded, _ = hamming74_decode(corrupted)
        assert not np.array_equal(decoded, data)

    def test_size_validation(self):
        with pytest.raises(PacketError):
            hamming74_encode(np.ones(5, dtype=np.uint8))
        with pytest.raises(PacketError):
            hamming74_decode(np.ones(8, dtype=np.uint8))
        with pytest.raises(PacketError):
            hamming74_encode(np.array([2, 0, 1, 1], dtype=np.uint8))


class TestInterleaver:
    def test_roundtrip(self):
        data = random_bits(35, rng=3)
        np.testing.assert_array_equal(deinterleave(interleave(data, 5), 5), data)

    def test_spreads_bursts(self):
        # A burst of `depth` consecutive errors lands in distinct rows.
        depth = 5
        data = np.zeros(35, dtype=np.uint8)
        stream = interleave(data, depth)
        stream[10:15] ^= 1  # 5-bit burst on air
        recovered = deinterleave(stream, depth)
        error_positions = np.where(recovered)[0]
        rows = error_positions // (35 // depth)
        assert np.unique(rows).size == depth  # one error per row

    def test_validation(self):
        with pytest.raises(PacketError):
            interleave(np.ones(7, dtype=np.uint8), 5)
        with pytest.raises(ConfigurationError):
            interleave(np.ones(10, dtype=np.uint8), 0)


class TestFecConfig:
    def test_protect_recover_roundtrip(self):
        config = FecConfig(interleaver_depth=5)
        payload = random_bits(33, rng=4)  # awkward size: padding exercised
        protected = config.protect(payload)
        assert protected.size == config.encoded_size(33)
        recovered, corrected = config.recover(protected, 33)
        np.testing.assert_array_equal(recovered, payload)
        assert corrected == 0

    def test_survives_scattered_errors(self):
        config = FecConfig(interleaver_depth=5)
        payload = random_bits(40, rng=5)
        protected = config.protect(payload)
        corrupted = protected.copy()
        # One error every ~8 bits — far beyond an uncoded link's tolerance.
        corrupted[::8] ^= 1
        recovered, corrected = config.recover(corrupted, 40)
        errors = int(np.sum(recovered != payload))
        assert corrected >= 1
        assert errors <= 2  # most damage repaired

    def test_survives_single_chirp_burst(self):
        """One whole 5-bit symbol destroyed on air: the interleaver spreads
        it to one error per codeword, all correctable."""
        config = FecConfig(interleaver_depth=5)
        payload = random_bits(60, rng=6)
        protected = config.protect(payload)
        corrupted = protected.copy()
        corrupted[25:30] ^= 1  # a chirp's worth of adjacent on-air bits
        recovered, _ = config.recover(corrupted, 60)
        np.testing.assert_array_equal(recovered, payload)

    def test_code_rate(self):
        assert FecConfig().code_rate == pytest.approx(4 / 7)

    def test_recover_length_check(self):
        config = FecConfig(interleaver_depth=5)
        protected = config.protect(random_bits(20, rng=7))
        with pytest.raises(PacketError):
            config.recover(protected, 10_000)


class TestLinkBenefit:
    def test_fec_beats_uncoded_at_the_margin(self, alphabet):
        """End-to-end at 9 m (past the clean envelope): the protected link
        delivers fewer payload errors than the uncoded one, after paying
        the 7/4 airtime."""
        from repro.channel.link_budget import DownlinkBudget
        from repro.core.downlink import DownlinkEncoder
        from repro.core.packet import DownlinkPacket, pad_bits_to_symbols
        from repro.radar.config import XBAND_9GHZ
        from repro.tag.decoder_dsp import TagDecoder
        from repro.tag.frontend import AnalyticTagFrontend

        encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
        budget = DownlinkBudget(
            tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
            radar_antenna=XBAND_9GHZ.antenna,
            frequency_hz=XBAND_9GHZ.center_frequency_hz,
        )
        frontend = AnalyticTagFrontend(budget=budget, delta_t_s=alphabet.decoder.delta_t_s)
        decoder = TagDecoder(alphabet)
        config = FecConfig(interleaver_depth=alphabet.symbol_bits)

        def run_link(bits_on_air, trial):
            padded = pad_bits_to_symbols(bits_on_air, alphabet.symbol_bits)
            packet = DownlinkPacket.from_bits(alphabet, padded)
            frame = encoder.encode_packet(packet)
            capture = frontend.capture(frame, 9.0, rng=trial)
            decoded = decoder.decode_aligned(
                capture, num_payload_symbols=packet.num_payload_symbols
            )
            out = decoded.bits
            if out.size < padded.size:
                out = np.concatenate(
                    [out, np.zeros(padded.size - out.size, dtype=np.uint8)]
                )
            return out[: bits_on_air.size]

        uncoded_errors = 0
        coded_errors = 0
        total = 0
        for trial in range(12):
            payload = random_bits(60, rng=trial)
            # Uncoded arm.
            uncoded_errors += int(np.sum(run_link(payload, 100 + trial) != payload))
            # FEC arm: protect, transmit, recover.
            protected = config.protect(payload)
            received = run_link(protected, 200 + trial)
            recovered, _ = config.recover(received, payload.size)
            coded_errors += int(np.sum(recovered != payload))
            total += payload.size
        assert uncoded_errors > 0, "margin distance should produce raw errors"
        assert coded_errors < uncoded_errors
