"""Doppler effects for moving tags/targets.

Range-Doppler processing separates the tag's *modulation* frequency from
motion-induced Doppler; these helpers provide the physics for both.
"""

from __future__ import annotations

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.utils.validation import ensure_positive


def doppler_shift_hz(radial_velocity_m_s: float, frequency_hz: float) -> float:
    """Two-way Doppler shift ``2 v f / c`` of a monostatic radar return."""
    ensure_positive("frequency_hz", frequency_hz)
    return 2.0 * radial_velocity_m_s * frequency_hz / SPEED_OF_LIGHT


def radial_velocity_phase(
    radial_velocity_m_s: float,
    frequency_hz: float,
    chirp_times_s: np.ndarray,
) -> np.ndarray:
    """Per-chirp phase progression (radians) of a mover across a frame.

    The slow-time phase of a target moving at constant radial velocity is
    ``phi[k] = 2 pi * (2 v f / c) * t_k`` where ``t_k`` is the start time
    of chirp ``k``.
    """
    shift = doppler_shift_hz(radial_velocity_m_s, frequency_hz)
    return 2.0 * np.pi * shift * np.asarray(chirp_times_s, dtype=float)


def max_unambiguous_velocity_m_s(frequency_hz: float, chirp_period_s: float) -> float:
    """Largest |v| resolvable without slow-time aliasing: ``lambda/(4 T)``."""
    ensure_positive("frequency_hz", frequency_hz)
    ensure_positive("chirp_period_s", chirp_period_s)
    lam = SPEED_OF_LIGHT / frequency_hz
    return lam / (4.0 * chirp_period_s)


def velocity_resolution_m_s(
    frequency_hz: float, frame_duration_s: float
) -> float:
    """Velocity resolution of a frame: ``lambda / (2 T_frame)``."""
    ensure_positive("frequency_hz", frequency_hz)
    ensure_positive("frame_duration_s", frame_duration_s)
    lam = SPEED_OF_LIGHT / frequency_hz
    return lam / (2.0 * frame_duration_s)
