"""Physical constants and shared numeric conventions.

All quantities in this package use base SI units unless a name says
otherwise: seconds, meters, hertz, watts, kelvin.  Decibel quantities carry
a ``_db`` / ``_dbm`` suffix.
"""

from __future__ import annotations

#: Speed of light in vacuum (m/s).
SPEED_OF_LIGHT = 299_792_458.0

#: Boltzmann constant (J/K), for thermal-noise floors.
BOLTZMANN = 1.380_649e-23

#: Reference temperature for noise calculations (K).
REFERENCE_TEMPERATURE_K = 290.0

#: Thermal noise power spectral density at 290 K, in dBm/Hz (= -174 dBm/Hz).
THERMAL_NOISE_DBM_PER_HZ = -173.975

#: Velocity factor of a typical coaxial delay line relative to c (paper: k ~= 0.7).
COAX_VELOCITY_FACTOR = 0.7

#: Meters per inch, used because the paper specifies delay-line lengths in inches.
METERS_PER_INCH = 0.0254

#: Maximum fraction of a chirp period a chirp may occupy (paper Section 3.1:
#: "the maximum chirp duration cannot be larger than 80% of T_period",
#: reflecting minimum inter-chirp delays in commercial radars).
MAX_CHIRP_DUTY = 0.80
