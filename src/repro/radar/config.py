"""Radar configuration presets.

The paper prototypes two radars and argues the design extends to a third:

* ``XBAND_9GHZ`` — TI LMX2492EVM chirp generator + ZX80-05113LN+ amplifier:
  9 GHz band, 1 GHz of configurable bandwidth, 7 dBm output, chirp-level
  slope control.  Used for all parameter-sweep experiments.
* ``TINYRAD_24GHZ`` — Analog Devices TinyRad: 24 GHz, 250 MHz bandwidth
  (max ISM allocation), 8 dBm output.  Used for the mmWave extension
  (Fig. 17).
* ``AUTOMOTIVE_77GHZ`` — conceptual 77 GHz automotive preset ("our system
  applies to 77GHz radar as well").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.channel.noise import NoiseModel
from repro.components.antenna import Antenna
from repro.constants import MAX_CHIRP_DUTY
from repro.errors import ConfigurationError
from repro.utils.validation import ensure_positive
from repro.waveform.parameters import ChirpParameters


@dataclass(frozen=True)
class RadarConfig:
    """Static description of an FMCW radar platform.

    Attributes
    ----------
    name:
        Human-readable identifier.
    start_frequency_hz:
        Sweep start frequency ``f0``.
    max_bandwidth_hz:
        Largest configurable sweep bandwidth.
    tx_power_dbm:
        Transmit power at the antenna port.
    antenna:
        Monostatic antenna (same gain TX and RX).
    if_sample_rate_hz:
        Complex IF sample rate of the receiver ADC.
    adc_bits:
        Receiver ADC resolution.
    noise:
        Receive-chain noise model.
    min_chirp_duration_s / max_chirp_duration_s:
        Chirp-timing engine limits (commercial radars support roughly
        10 us - hundreds of us).
    phase_noise_linewidth_hz:
        Oscillator linewidth for optional phase-noise impairment.
    """

    name: str
    start_frequency_hz: float
    max_bandwidth_hz: float
    tx_power_dbm: float
    antenna: Antenna
    if_sample_rate_hz: float = 5.0e6
    adc_bits: int = 12
    noise: NoiseModel = NoiseModel(noise_figure_db=10.0)
    min_chirp_duration_s: float = 10e-6
    max_chirp_duration_s: float = 500e-6
    phase_noise_linewidth_hz: float = 0.0

    def __post_init__(self) -> None:
        ensure_positive("start_frequency_hz", self.start_frequency_hz)
        ensure_positive("max_bandwidth_hz", self.max_bandwidth_hz)
        ensure_positive("if_sample_rate_hz", self.if_sample_rate_hz)
        ensure_positive("min_chirp_duration_s", self.min_chirp_duration_s)
        ensure_positive("max_chirp_duration_s", self.max_chirp_duration_s)
        if self.min_chirp_duration_s >= self.max_chirp_duration_s:
            raise ConfigurationError(
                f"min_chirp_duration_s {self.min_chirp_duration_s} must be < "
                f"max_chirp_duration_s {self.max_chirp_duration_s}"
            )
        if self.adc_bits < 1:
            raise ConfigurationError(f"adc_bits must be >= 1, got {self.adc_bits}")

    @property
    def center_frequency_hz(self) -> float:
        """Band-center frequency at full bandwidth."""
        return self.start_frequency_hz + self.max_bandwidth_hz / 2.0

    def chirp(
        self,
        duration_s: float,
        *,
        bandwidth_hz: float | None = None,
    ) -> ChirpParameters:
        """Build a chirp this radar can transmit, validating its limits."""
        bandwidth = self.max_bandwidth_hz if bandwidth_hz is None else bandwidth_hz
        if bandwidth > self.max_bandwidth_hz + 1e-6:
            raise ConfigurationError(
                f"{self.name} supports at most {self.max_bandwidth_hz} Hz of "
                f"bandwidth, requested {bandwidth}"
            )
        if not (self.min_chirp_duration_s - 1e-12 <= duration_s <= self.max_chirp_duration_s + 1e-12):
            raise ConfigurationError(
                f"{self.name} supports chirp durations in "
                f"[{self.min_chirp_duration_s}, {self.max_chirp_duration_s}] s, "
                f"requested {duration_s}"
            )
        return ChirpParameters(
            start_frequency_hz=self.start_frequency_hz,
            bandwidth_hz=bandwidth,
            duration_s=duration_s,
        )

    def max_chirp_duration_for_period(self, period_s: float) -> float:
        """Longest chirp allowed in a slot of ``period_s`` (80% duty rule)."""
        ensure_positive("period_s", period_s)
        return min(MAX_CHIRP_DUTY * period_s, self.max_chirp_duration_s)

    def with_bandwidth(self, bandwidth_hz: float) -> "RadarConfig":
        """A copy of this config restricted to a smaller sweep bandwidth."""
        if bandwidth_hz > self.max_bandwidth_hz:
            raise ConfigurationError(
                f"cannot raise bandwidth above the platform maximum "
                f"{self.max_bandwidth_hz}, requested {bandwidth_hz}"
            )
        return replace(self, max_bandwidth_hz=bandwidth_hz)


XBAND_9GHZ = RadarConfig(
    name="xband-9ghz",
    start_frequency_hz=8.5e9,
    max_bandwidth_hz=1.0e9,
    tx_power_dbm=7.0,
    antenna=Antenna(gain_dbi=20.0, beamwidth_deg=18.0),
    if_sample_rate_hz=5.0e6,
    noise=NoiseModel(noise_figure_db=10.0),
)

TINYRAD_24GHZ = RadarConfig(
    name="tinyrad-24ghz",
    start_frequency_hz=24.0e9,
    max_bandwidth_hz=250.0e6,
    tx_power_dbm=8.0,
    antenna=Antenna(gain_dbi=13.0, beamwidth_deg=30.0),
    if_sample_rate_hz=1.0e6,
    noise=NoiseModel(noise_figure_db=9.0),
)

AUTOMOTIVE_77GHZ = RadarConfig(
    name="automotive-77ghz",
    start_frequency_hz=77.0e9,
    max_bandwidth_hz=4.0e9,
    tx_power_dbm=12.0,
    antenna=Antenna(gain_dbi=12.0, beamwidth_deg=30.0),
    if_sample_rate_hz=10.0e6,
    noise=NoiseModel(noise_figure_db=12.0),
)
