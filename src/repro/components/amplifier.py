"""Amplifier / LNA model: gain, noise figure, and output compression.

Used for the radar's PA (e.g. ZX80-05113LN+ in the 9 GHz prototype) and
receive-chain noise-figure accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import db_to_power_ratio, dbm_to_watts
from repro.utils.validation import ensure_finite, ensure_positive


@dataclass(frozen=True)
class Amplifier:
    """Behavioural amplifier.

    Parameters
    ----------
    gain_db:
        Small-signal power gain.
    noise_figure_db:
        Added-noise factor referred to the input.
    output_p1db_dbm:
        1-dB output compression point; outputs are soft-clipped above it.
    """

    gain_db: float = 20.0
    noise_figure_db: float = 3.0
    output_p1db_dbm: float = 10.0

    def __post_init__(self) -> None:
        ensure_finite("gain_db", self.gain_db)
        if self.noise_figure_db < 0:
            raise ValueError(f"noise_figure_db must be >= 0, got {self.noise_figure_db!r}")
        ensure_finite("output_p1db_dbm", self.output_p1db_dbm)

    def output_power_w(self, input_power_w: float) -> float:
        """Amplified power with soft (Rapp-style) compression at P1dB."""
        ensure_positive("input_power_w", input_power_w)
        linear_out = input_power_w * db_to_power_ratio(self.gain_db)
        saturation_w = float(dbm_to_watts(self.output_p1db_dbm)) * db_to_power_ratio(1.0)
        # Rapp model with smoothness 2 on power quantities.
        return linear_out / (1.0 + (linear_out / saturation_w) ** 2) ** 0.5

    def insertion_loss_db(self, frequency_hz: float = 0.0) -> float:
        """Negative loss = gain, to compose with two-port cascades."""
        return -self.gain_db

    def group_delay_s(self, frequency_hz: float = 0.0) -> float:
        """Electrical delay (negligible at the scales modelled here)."""
        return 0.0


def cascade_noise_figure_db(stages: "list[tuple[float, float]]") -> float:
    """Friis cascade: stages are (gain_db, nf_db) pairs, in signal order."""
    if not stages:
        raise ValueError("need at least one stage")
    total_factor = 0.0
    gain_product = 1.0
    for index, (gain_db, nf_db) in enumerate(stages):
        factor = db_to_power_ratio(nf_db)
        if index == 0:
            total_factor = factor
        else:
            total_factor += (factor - 1.0) / gain_product
        gain_product *= db_to_power_ratio(gain_db)
    return float(10.0 * np.log10(total_factor))
